"""Per-cluster streaming with dynamic server switching.

The paper: "If the optimal server remains the same for as long as the first
cluster of the video is downloaded and played, then the second cluster is
requested from the same server.  If the optimal server changes due to the
change of certain network features during the downloading of a certain
cluster, then the next cluster will be requested by the new optimal server."

:class:`StreamingSession` implements exactly that loop as a simulation
process: before every cluster it re-runs the VRA, switches source servers
when the decision changes, reserves bandwidth along the chosen path for the
cluster transfer, and keeps playback-continuity bookkeeping (startup delay,
stalls) so the QoS effect of switching is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # runtime coupling stays duck-typed (tests pass fakes)
    from repro.resilience.supervisor import SessionSupervisor as FailoverControl

from repro.client.requests import VideoRequest
from repro.core.vra import VraDecision
from repro.errors import LinkCapacityError, ReproError, RoutingError
from repro.network.flows import FlowManager
from repro.server.video_server import VideoServer
from repro.sim.engine import Simulator
from repro.sim.process import Delay
from repro.storage.striping import cluster_sizes
from repro.storage.video import VideoTitle

#: Disk-read rate used for home-server (zero-hop) transfers, Mbps.
DEFAULT_LOCAL_READ_MBPS = 100.0

#: Floor transfer rate when a path is badly congested, so a session always
#: makes progress (the QoS violation is still recorded).
MIN_TRANSFER_MBPS = 0.05

#: How often an in-flight cluster transfer re-evaluates its achievable
#: rate.  The paper's network is best-effort: background traffic rising
#: mid-transfer slows the transfer down (and falling traffic speeds it
#: back up to the playback rate).  Server switching still happens only at
#: cluster boundaries, exactly as the paper prescribes.
DEFAULT_RATE_UPDATE_PERIOD_S = 60.0

DecideFn = Callable[[], VraDecision]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for cluster-boundary VRA failures.

    When a per-cluster decision raises a :class:`RoutingError` (every
    holder crashed, the home server is partitioned, admission slots are
    exhausted network-wide), the session waits ``backoff_s`` of simulated
    time and retries, doubling up to ``max_backoff_s``, at most
    ``attempts`` times per cluster.  ``attempts=0`` (the default) restores
    the fail-fast behaviour exactly — no extra events, no extra decide
    calls — which is what keeps fault-free runs byte-identical.

    Attributes:
        attempts: Maximum retries per cluster boundary (0 = disabled).
        backoff_s: First retry delay in simulated seconds.
        multiplier: Backoff growth factor between consecutive retries.
        max_backoff_s: Ceiling on any single retry delay.
        deadline_s: Cap on the *total* backoff a session may accumulate
            across all its cluster boundaries, so exponential backoff
            cannot exceed the session's overall slack.  The final wait
            is clipped to the remaining budget; a retry needed with no
            budget left re-raises instead of sleeping.  ``None`` (the
            default) keeps the attempt-count-only behaviour bit-for-bit.
    """

    attempts: int = 0
    backoff_s: float = 30.0
    multiplier: float = 2.0
    max_backoff_s: float = 300.0
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.attempts < 0:
            raise ReproError(f"retry attempts must be >= 0, got {self.attempts!r}")
        if not (self.backoff_s > 0.0):
            raise ReproError(f"retry backoff must be positive, got {self.backoff_s!r}")
        if self.multiplier < 1.0:
            raise ReproError(
                f"retry multiplier must be >= 1, got {self.multiplier!r}"
            )
        if self.max_backoff_s < self.backoff_s:
            raise ReproError(
                f"max backoff {self.max_backoff_s!r} below initial "
                f"backoff {self.backoff_s!r}"
            )
        if self.deadline_s is not None and not (self.deadline_s > 0.0):
            raise ReproError(
                f"retry deadline must be positive, got {self.deadline_s!r}"
            )

    @property
    def enabled(self) -> bool:
        """True when the session should retry at all."""
        return self.attempts > 0


#: Shared disabled policy: the default fail-fast behaviour.
NO_RETRY = RetryPolicy()


@dataclass(frozen=True)
class ClusterRecord:
    """Delivery record of one cluster.

    Attributes:
        index: 0-based cluster index.
        server_uid: The server that sourced the cluster.
        path_nodes: Node path from home server to source (VRA direction).
        rate_mbps: Transfer rate actually achieved.
        start: Simulated time the transfer began.
        end: Simulated time the transfer finished.
        size_mb: Cluster size.
        switched: True when the source differs from the previous cluster's.
        qos_violated: True when the achieved rate fell below the title's
            playback bitrate.
    """

    index: int
    server_uid: str
    path_nodes: Tuple[str, ...]
    rate_mbps: float
    start: float
    end: float
    size_mb: float
    switched: bool
    qos_violated: bool


@dataclass
class SessionRecord:
    """Everything measured about one streaming session.

    Attributes:
        request: The originating request (status is kept up to date).
        clusters: Per-cluster delivery records, in order.
        startup_delay_s: First-cluster completion minus submission.
        stall_s: Total playback gap time after startup.
        switch_count: Number of mid-stream server changes.
        qos_violation_count: Clusters delivered below the playback rate.
        completed_at: Simulated completion time (None if failed/running).
        retry_count: Cluster-boundary VRA retries taken (retry policy).
        retry_wait_s: Total simulated time spent in retry backoff.
        recovered: True when at least one cluster boundary failed and a
            later retry found a source again (the resilience headline).
        admission_wait_s: Load-leveling delay assigned by the admission
            queue before the session started (0.0 when the queue is off
            or the request was admitted immediately).
        failover_count: Mid-stream migrations forced by a fault on the
            serving server or delivery path (session supervisor).
        failover_stall_s: Total simulated time spent between a fault
            preempting a transfer segment and the replacement decision.
    """

    request: VideoRequest
    clusters: List[ClusterRecord] = field(default_factory=list)
    startup_delay_s: float = 0.0
    stall_s: float = 0.0
    switch_count: int = 0
    qos_violation_count: int = 0
    completed_at: Optional[float] = None
    retry_count: int = 0
    retry_wait_s: float = 0.0
    recovered: bool = False
    admission_wait_s: float = 0.0
    failover_count: int = 0
    failover_stall_s: float = 0.0

    @property
    def servers_used(self) -> List[str]:
        """Distinct source servers, in first-use order."""
        seen: List[str] = []
        for record in self.clusters:
            if record.server_uid not in seen:
                seen.append(record.server_uid)
        return seen

    @property
    def completed(self) -> bool:
        """True once every cluster was delivered."""
        return self.completed_at is not None


class StreamingSession:
    """Drives one video delivery, cluster by cluster.

    Args:
        sim: The simulation engine.
        request: The client request being served.
        video: The requested title.
        cluster_mb: Striping cluster size ``c`` (decides switching
            granularity, as the paper notes).
        decide: Re-runs the VRA for this request and returns the current
            decision; called once per cluster ("the routing algorithm also
            continues to run at the connecting server").
        decide_for_cluster: Optional cluster-aware decision function
            ``f(cluster_index) -> VraDecision`` used *instead of*
            ``decide`` when set.  Fractional placement policies install
            one so prefix-resident clusters serve from the home server
            while the suffix routes through the VRA.  None (default)
            keeps the paper's index-blind per-cluster decide.
        flows: Bandwidth reservation manager for the topology.
        servers: Video servers by node uid (for admission bookkeeping).
        local_read_mbps: Transfer rate for home-server serves.
        retry: Cluster-boundary retry policy (default: disabled —
            fail-fast, the paper's behaviour).
        on_finish: Optional callback receiving the final SessionRecord.
        on_cluster: Optional callback receiving each ClusterRecord as it
            is delivered (the observability layer's span hook).
        on_retry: Optional callback ``(wait_s)`` fired per retry taken
            (the service's resilience counters).
        on_recover: Optional callback ``(outage_s)`` fired when a retry
            succeeds, with the simulated time the boundary was blocked.
        failover: Optional mid-stream failover control (the service's
            :class:`~repro.resilience.supervisor.SessionSupervisor`).
            When set, cluster delivery runs the preemptible segment path:
            the supervisor indexes each segment via ``track``/``untrack``
            and may :meth:`preempt` it, after which the session re-runs
            its decision function and migrates the rest of the cluster.
            None (the default) keeps the legacy transfer loop untouched.
        on_failover: Optional callback ``(stall_s)`` fired per completed
            mid-stream migration (the service's span/telemetry hook).
    """

    def __init__(
        self,
        sim: Simulator,
        request: VideoRequest,
        video: VideoTitle,
        cluster_mb: float,
        decide: DecideFn,
        flows: FlowManager,
        servers: Dict[str, VideoServer],
        decide_for_cluster: Optional[Callable[[int], VraDecision]] = None,
        local_read_mbps: float = DEFAULT_LOCAL_READ_MBPS,
        rate_update_period_s: float = DEFAULT_RATE_UPDATE_PERIOD_S,
        retry: RetryPolicy = NO_RETRY,
        on_finish: Optional[Callable[[SessionRecord], None]] = None,
        on_cluster: Optional[Callable[[ClusterRecord], None]] = None,
        on_retry: Optional[Callable[[float], None]] = None,
        on_recover: Optional[Callable[[float], None]] = None,
        failover: Optional["FailoverControl"] = None,
        on_failover: Optional[Callable[[float], None]] = None,
    ):
        if not (rate_update_period_s > 0.0):
            raise ReproError(
                f"rate update period must be positive, got {rate_update_period_s!r}"
            )
        self._sim = sim
        self._video = video
        self._cluster_sizes = cluster_sizes(video.size_mb, cluster_mb)
        self._decide = decide
        self._decide_for_cluster = decide_for_cluster
        self._flows = flows
        self._servers = servers
        self._local_read_mbps = local_read_mbps
        self._rate_quantum_s = rate_update_period_s
        self._retry = retry
        self._on_finish = on_finish
        self._on_cluster = on_cluster
        self._on_retry = on_retry
        self._on_recover = on_recover
        self._failover = failover
        self._on_failover = on_failover
        self._preempt_reason: Optional[str] = None
        self.record = SessionRecord(request=request)

    @property
    def title_id(self) -> str:
        """The title this session delivers (supervisor index key)."""
        return self._video.title_id

    def preempt(self, reason: str) -> None:
        """Flag the in-flight transfer segment for mid-stream failover.

        Called by the session supervisor when a fault hits the serving
        server or a path link; the segment loop checks the flag on its
        next wake-up (usually the supervisor's immediate ``poke``),
        abandons the segment, and re-decides.  The first reason wins.
        """
        if self._preempt_reason is None:
            self._preempt_reason = reason

    # ------------------------------------------------------------------ #
    def run(self) -> Generator[Delay, None, SessionRecord]:
        """Generator body to wrap in a :class:`repro.sim.process.Process`."""
        request = self.record.request
        request.mark_streaming()
        previous_server: Optional[str] = None
        try:
            for index, size_mb in enumerate(self._cluster_sizes):
                get_decision = self._decider_for(index)
                if self._failover is not None:
                    # Boundary outages also ride the failover control:
                    # the retry budget runs first (byte-identical while
                    # it lasts), then the supervisor stalls the session
                    # through the outage instead of letting it die.
                    decision = yield from self._boundary_decide(get_decision)
                elif self._retry.enabled:
                    decision = yield from self._decide_with_retry(get_decision)
                else:
                    decision = get_decision()
                server_uid = decision.chosen_uid
                switched = previous_server is not None and server_uid != previous_server
                if switched:
                    self.record.switch_count += 1
                previous_server = server_uid
                if self._failover is None:
                    yield from self._transfer_cluster(index, size_mb, decision, switched)
                else:
                    previous_server = yield from self._deliver_cluster(
                        index, size_mb, decision, switched, get_decision
                    )
        except ReproError as exc:
            request.mark_failed(str(exc))
            self._finish()
            return self.record
        request.mark_completed()
        self.record.completed_at = self._sim.now
        self._compute_playback_metrics()
        self._finish()
        return self.record

    def _decider_for(self, index: int) -> DecideFn:
        """The decision function for one cluster: index-aware when a
        fractional placement installed one, the plain VRA call otherwise."""
        if self._decide_for_cluster is None:
            return self._decide
        return lambda: self._decide_for_cluster(index)

    def _decide_with_retry(
        self, get_decision: DecideFn
    ) -> Generator[Delay, None, VraDecision]:
        """One cluster-boundary decision under the retry policy.

        Transient routing failures — every holder crashed or polled out,
        the home server partitioned from all of them — are retried with
        exponential backoff instead of failing the session outright.
        Non-routing errors propagate immediately; exhausting the budget
        re-raises the last routing error (the session then fails exactly
        as it would have fail-fast, just later).
        """
        policy = self._retry
        backoff = policy.backoff_s
        blocked_since: Optional[float] = None
        tries = 0
        while True:
            try:
                decision = get_decision()
            except RoutingError as exc:
                if tries >= policy.attempts:
                    raise
                wait = backoff
                if policy.deadline_s is not None:
                    # Total-backoff budget across the whole session: clip
                    # this wait to the remaining slack, fail when spent.
                    slack = policy.deadline_s - self.record.retry_wait_s
                    if slack <= 1e-12:
                        raise
                    wait = min(backoff, slack)
                if blocked_since is None:
                    blocked_since = self._sim.now
                tries += 1
                self.record.retry_count += 1
                self.record.retry_wait_s += wait
                if self._on_retry is not None:
                    self._on_retry(wait)
                yield Delay(wait)
                backoff = min(backoff * policy.multiplier, policy.max_backoff_s)
                continue
            if blocked_since is not None:
                self.record.recovered = True
                if self._on_recover is not None:
                    self._on_recover(self._sim.now - blocked_since)
            return decision

    # ------------------------------------------------------------------ #
    def _transfer_cluster(
        self, index: int, size_mb: float, decision: VraDecision, switched: bool
    ) -> Generator[Delay, None, None]:
        server = self._servers.get(decision.chosen_uid)
        lease = server.begin_serving(self._video.title_id) if server is not None else None
        path_nodes = decision.path.nodes
        local = decision.served_locally or decision.path.hop_count == 0
        node_path = list(path_nodes)
        start = self._sim.now
        remaining = size_mb
        min_rate = float("inf")
        flow = None
        try:
            # Best-effort transfer: re-evaluate the achievable rate every
            # quantum so background-traffic changes mid-cluster slow the
            # transfer down (or let it recover to the playback rate).
            while remaining > 1e-9:
                rate, flow = self._acquire_rate(local, node_path)
                min_rate = min(min_rate, rate)
                time_needed = remaining * 8.0 / rate
                step = min(time_needed, self._rate_quantum_s)
                yield Delay(step)
                remaining -= rate * step / 8.0
                if flow is not None:
                    self._flows.release(flow)
                    flow = None
        finally:
            if flow is not None:
                self._flows.release(flow)
            if server is not None and lease is not None:
                server.end_serving(lease)
        end = self._sim.now
        qos_violated = min_rate < self._video.bitrate_mbps - 1e-9
        if qos_violated:
            self.record.qos_violation_count += 1
        average_rate = size_mb * 8.0 / (end - start) if end > start else min_rate
        cluster_record = ClusterRecord(
            index=index,
            server_uid=decision.chosen_uid,
            path_nodes=path_nodes,
            rate_mbps=average_rate,
            start=start,
            end=end,
            size_mb=size_mb,
            switched=switched,
            qos_violated=qos_violated,
        )
        self.record.clusters.append(cluster_record)
        if self._on_cluster is not None:
            self._on_cluster(cluster_record)

    def _acquire_rate(self, local: bool, node_path: List[str]):
        """Pick the current transfer rate and reserve it on the path.

        Local serves read from disk; remote serves target the playback
        bitrate and degrade to the bottleneck's spare capacity (never below
        :data:`MIN_TRANSFER_MBPS`) when the path is congested.
        """
        if local:
            return self._local_read_mbps, None
        target = self._video.bitrate_mbps
        bottleneck = self._flows.bottleneck_mbps(node_path)
        rate = min(target, bottleneck) if bottleneck > 0.0 else 0.0
        rate = max(rate, MIN_TRANSFER_MBPS)
        try:
            flow = self._flows.reserve(node_path, rate)
        except LinkCapacityError:
            # The bottleneck moved between measurement and reservation
            # (another session grabbed it); fall back to the floor rate
            # without a reservation so progress continues.
            return MIN_TRANSFER_MBPS, None
        return rate, flow

    # ------------------------------------------------------------------ #
    # failover delivery path (active only when a supervisor is installed)
    # ------------------------------------------------------------------ #
    def _deliver_cluster(
        self,
        index: int,
        size_mb: float,
        decision: VraDecision,
        switched: bool,
        get_decision: DecideFn,
    ) -> Generator[Delay, None, str]:
        """Deliver one cluster as a chain of preemptible segments.

        The fault-free case is exactly one segment (same events as the
        legacy loop, plus track/untrack bookkeeping).  When a segment is
        preempted mid-flight, the remainder of the cluster re-enters the
        VRA and continues from a surviving holder; each segment leaves
        its own partial :class:`ClusterRecord` (sizes sum to the cluster
        size, so the playback-continuity math is unchanged).

        Returns:
            The uid of the server that delivered the final bytes, which
            becomes ``previous_server`` for boundary-switch detection.
        """
        remaining = size_mb
        current = decision
        segment_switched = switched
        while True:
            remaining = yield from self._transfer_segment(
                index, remaining, current, segment_switched
            )
            if remaining <= 1e-9:
                return current.chosen_uid
            reason = self._preempt_reason or "fault"
            self._preempt_reason = None
            old_uid = current.chosen_uid
            current = yield from self._failover_decide(get_decision, reason)
            segment_switched = current.chosen_uid != old_uid
            if segment_switched:
                self.record.switch_count += 1

    def _transfer_segment(
        self, index: int, size_mb: float, decision: VraDecision, switched: bool
    ) -> Generator[Delay, None, float]:
        """One preemptible slice of a cluster transfer.

        Mirrors :meth:`_transfer_cluster`, with two differences: the
        supervisor indexes the segment while it is in flight, and
        progress accounting uses the *elapsed* time of each step — a
        preempting ``poke`` cuts the delay short, so only the bytes
        actually moved are credited.

        Returns:
            The undelivered remainder in MB (0 when the segment — and
            with it the cluster — completed).
        """
        server = self._servers.get(decision.chosen_uid)
        lease = server.begin_serving(self._video.title_id) if server is not None else None
        path_nodes = decision.path.nodes
        local = decision.served_locally or decision.path.hop_count == 0
        node_path = list(path_nodes)
        start = self._sim.now
        remaining = size_mb
        min_rate = float("inf")
        flow = None
        self._failover.track(self, decision)
        try:
            while remaining > 1e-9:
                rate, flow = self._acquire_rate(local, node_path)
                min_rate = min(min_rate, rate)
                time_needed = remaining * 8.0 / rate
                step = min(time_needed, self._rate_quantum_s)
                step_started = self._sim.now
                yield Delay(step)
                elapsed = self._sim.now - step_started
                remaining -= rate * min(elapsed, step) / 8.0
                if flow is not None:
                    self._flows.release(flow)
                    flow = None
                if self._preempt_reason is not None:
                    break
        finally:
            self._failover.untrack(self)
            if flow is not None:
                self._flows.release(flow)
            if server is not None and lease is not None:
                server.end_serving(lease)
        end = self._sim.now
        delivered = size_mb - remaining
        if delivered > 1e-9:
            qos_violated = min_rate < self._video.bitrate_mbps - 1e-9
            if qos_violated:
                self.record.qos_violation_count += 1
            average_rate = delivered * 8.0 / (end - start) if end > start else min_rate
            cluster_record = ClusterRecord(
                index=index,
                server_uid=decision.chosen_uid,
                path_nodes=path_nodes,
                rate_mbps=average_rate,
                start=start,
                end=end,
                size_mb=delivered,
                switched=switched,
                qos_violated=qos_violated,
            )
            self.record.clusters.append(cluster_record)
            if self._on_cluster is not None:
                self._on_cluster(cluster_record)
        return max(remaining, 0.0)

    def _boundary_decide(
        self, get_decision: DecideFn
    ) -> Generator[Delay, None, VraDecision]:
        """One cluster-boundary decision under the failover safety net.

        The configured retry policy runs first, exactly as it would
        without a supervisor; only when it gives up (fail-fast with no
        budget, or the budget spent) does the failover control take
        over and stall the session through the outage instead of
        failing it.
        """
        try:
            if self._retry.enabled:
                decision = yield from self._decide_with_retry(get_decision)
            else:
                decision = get_decision()
        except RoutingError:
            decision = yield from self._failover_decide(get_decision, "boundary")
        return decision

    def _failover_decide(
        self, get_decision: DecideFn, reason: str
    ) -> Generator[Delay, None, VraDecision]:
        """Find a replacement source after a fault or routing outage.

        Routing failures while a full copy of the title is still
        registered somewhere are transient — the holder is crashed (it
        will recover), its slots are full, or the path is congested —
        so the session stalls ``backoff_s`` and retries.  Only when no
        full holder *remains* anywhere (the last copy was lost) does
        the supervisor log the verdict and fail the session; by then no
        online full holder can exist either, which is the invariant the
        property suite pins.
        """
        control = self._failover
        stall_started = self._sim.now
        while True:
            try:
                decision = get_decision()
            except RoutingError as exc:
                if not control.holder_exists(self._video.title_id):
                    control.note_failed(self._video.title_id, reason)
                    raise ReproError(
                        f"failover ({reason}): no full holder of title "
                        f"{self._video.title_id!r} remains: {exc}"
                    ) from exc
                yield Delay(control.backoff_s)
                continue
            stall = self._sim.now - stall_started
            self.record.failover_count += 1
            self.record.failover_stall_s += stall
            control.note_failover(stall)
            if self._on_failover is not None:
                self._on_failover(stall)
            return decision

    def _compute_playback_metrics(self) -> None:
        """Startup delay and stall time from the cluster timeline.

        Playback starts when the first cluster lands; cluster ``i`` plays
        for its share of the title's duration and can only start once both
        the previous cluster finished playing and cluster ``i`` finished
        downloading.  Accumulated waiting past startup is stall time.
        """
        clusters = self.record.clusters
        if not clusters:
            return
        request = self.record.request
        self.record.startup_delay_s = clusters[0].end - request.submitted_at
        seconds_per_mb = self._video.playback_seconds_per_mb()
        playback_cursor = clusters[0].end
        stall = 0.0
        for record in clusters:
            if record.end > playback_cursor:
                stall += record.end - playback_cursor
                playback_cursor = record.end
            playback_cursor += record.size_mb * seconds_per_mb
        self.record.stall_s = stall

    def _finish(self) -> None:
        if self._failover is not None:
            self._failover.discard(self)
        if self._on_finish is not None:
            self._on_finish(self.record)
