"""The Virtual Routing Algorithm (paper Figure 5).

Given a client request, the VRA:

1. determines the client's *home server* (the server the client is directly
   connected to);
2. if the home server can provide the title, serves locally and quits;
3. otherwise lists every server holding the title, polls them for
   availability, computes the LVN of every link (equations 1-4), runs
   Dijkstra from the home server over those weights, and picks the
   candidate whose least-cost path is cheapest.

The decision object keeps the complete audit trail — weight table, Dijkstra
result (with optional step trace for Tables 4-5), every candidate's best
path — which is what the case-study benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence

from repro.core.lvn import (
    DEFAULT_NORMALIZATION_CONSTANT,
    NodeLoadFn,
    UsedBandwidthFn,
    weight_table,
)
from repro.core.lvn_delta import IncrementalLvnTable
from repro.errors import (
    NoReachableHolderError,
    ReproError,
    RoutingError,
    TitleUnavailableError,
)
from repro.network.compiled import TopologySnapshot
from repro.network.routing.cache import (
    DEFAULT_TREE_CAPACITY,
    DecisionCache,
    DecisionCacheStats,
    RoutingCache,
    RoutingCacheStats,
)
from repro.obs.registry import MetricsRegistry
from repro.network.routing.dijkstra import DijkstraResult, dijkstra
from repro.network.routing.paths import Path
from repro.network.topology import Topology

#: Poll callback: may a given server currently provide the title?
PollFn = Callable[[str], bool]

#: Routing-epoch provider: an opaque hashable token that changes whenever
#: any input of the LVN equations or Dijkstra could have changed.
EpochFn = Callable[[], Hashable]

#: Dirty-link provider backing delta-scoped cache invalidation: the names
#: of every link whose routing-visible inputs may have moved since the
#: previous call (drained from the topology/database change journals), or
#: None when the journals overflowed and only a full flush is safe.
DeltaFn = Callable[[], Optional[FrozenSet[str]]]


@dataclass(frozen=True)
class VraDecision:
    """The outcome of one VRA run.

    Attributes:
        title_id: The requested title.
        home_uid: The client's adjacent (home) server.
        chosen_uid: The server selected to transmit the video.
        served_locally: True when the home-server shortcut fired (step 3 of
            Figure 5); in that case no routing ran and ``path`` is the
            1-node path at cost 0.
        path: Least-cost path from the home server to ``chosen_uid`` (the
            download traverses it in reverse).
        candidate_paths: Best path per polled-up candidate server.
        weights: The LVN table used (empty for local serves).
        dijkstra_result: Full shortest-path tree (None for local serves).
        polled_out: Candidates that failed the availability poll.
        degraded: True when the decision was taken while the staleness
            guard had age-expired link stats inflated — the routing ran
            on conservative, not measured, weights.  Stamped by the
            service layer (``dataclasses.replace``), never by the VRA.
    """

    title_id: str
    home_uid: str
    chosen_uid: str
    served_locally: bool
    path: Path
    candidate_paths: Dict[str, Path] = field(default_factory=dict)
    weights: Dict[str, float] = field(default_factory=dict)
    dijkstra_result: Optional[DijkstraResult] = None
    polled_out: Sequence[str] = ()
    degraded: bool = False

    @property
    def cost(self) -> float:
        """Total LVN cost of the selected path (0 for local serves)."""
        return self.path.cost

    def download_route(self) -> Path:
        """The route walked by the video data: chosen server -> home."""
        return self.path.reversed()


class VirtualRoutingAlgorithm:
    """The VRA, parameterised the way the service deploys it.

    Args:
        topology: The service network.
        used_of: Used-bandwidth provider for the LVN equations; the service
            passes a database-backed reader so the VRA sees SNMP-reported
            (possibly stale) values, per the paper's data flow.
        normalization_constant: The K of equation (4); the paper suggests 10.
        node_load: Optional server-workload term folded into the node
            validations (the paper's future-work extension for "Server
            configuration factor(s)"); None gives the paper's exact eq. 2.
        trace: When True, every Dijkstra run records the paper-style step
            table (Tables 4-5) into the decision's ``dijkstra_result``.
        epoch_of: Optional routing-epoch provider.  When given (and
            ``cache_size > 0``) the LVN table and Dijkstra trees are
            memoized per epoch — a cache hit returns the same decision
            bit-for-bit as a cold run, because the provider's contract is
            to change whenever any routing input could have changed.
            None (the default) recomputes everything per decision,
            exactly the paper's Figure 5.
        cache_size: LRU bound on cached Dijkstra trees; ``0`` disables
            caching entirely even when ``epoch_of`` is given.
        delta_of: Optional dirty-link provider.  When given alongside an
            active cache (and ``node_load`` is None — the incremental
            table does not model the workload extension), epoch
            transitions are absorbed by patching the LVN table for just
            the dirty links and revalidating cached Dijkstra trees
            in place, instead of flushing everything.  A None return
            from the provider (journal overflow) falls back to the full
            flush, so the delta path can never change a decision.
        decision_cache_size: LRU bound on whole memoized decisions
            (:class:`~repro.network.routing.cache.DecisionCache`).  Only
            active alongside the routing cache; ``0`` (the default)
            disables whole-decision memoization and restores the
            run-Figure-5-per-request behaviour exactly.  Lookups happen
            only for :meth:`decide` calls that pass a ``cache_key``,
            because the key is what guarantees the poll answers are
            reproducible (see :meth:`decide`).
        metrics: Optional telemetry registry; when given (and enabled)
            the VRA counts decisions / local serves, records a
            candidate-count histogram under the ``vra.*`` families, and
            exposes the cache's delta-maintenance counters under
            ``routing.*``.
        compiled: Route weight-table builds and Dijkstra runs through the
            array-compiled :class:`~repro.network.compiled.TopologySnapshot`
            instead of the per-link python loops.  Output is bit-for-bit
            identical either way (the equivalence property suites pin it);
            this only changes the cost of a cache/memo miss.  Automatically
            ignored when ``node_load`` is active (the compiled kernel
            implements the paper's exact eq. 2, not the workload
            extension); trace-mode Dijkstra runs also fall back to the
            python path, which is the only implementation of the
            paper-style step tables.
    """

    def __init__(
        self,
        topology: Topology,
        used_of: Optional[UsedBandwidthFn] = None,
        normalization_constant: float = DEFAULT_NORMALIZATION_CONSTANT,
        node_load: Optional[NodeLoadFn] = None,
        trace: bool = False,
        epoch_of: Optional[EpochFn] = None,
        cache_size: int = DEFAULT_TREE_CAPACITY,
        delta_of: Optional[DeltaFn] = None,
        decision_cache_size: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        compiled: bool = False,
    ):
        self._topology = topology
        self._used_of = used_of
        self._k = normalization_constant
        self._node_load = node_load
        self._trace = trace
        self._epoch_of = epoch_of
        self._snapshot: Optional[TopologySnapshot] = (
            TopologySnapshot(topology) if compiled and node_load is None else None
        )
        if cache_size < 0:
            raise ReproError(
                f"routing cache size must be >= 0, got {cache_size!r}"
            )
        cacheable = epoch_of is not None and cache_size > 0
        self._delta_of = delta_of
        self._incremental: Optional[IncrementalLvnTable] = (
            IncrementalLvnTable(
                topology, used_of, normalization_constant, snapshot=self._snapshot
            )
            if cacheable and delta_of is not None and node_load is None
            else None
        )
        self.cache: Optional[RoutingCache] = (
            RoutingCache(
                max_trees=cache_size,
                delta_probe=self._delta_probe if self._incremental is not None else None,
            )
            if cacheable
            else None
        )
        if decision_cache_size < 0:
            raise ReproError(
                f"decision cache size must be >= 0, got {decision_cache_size!r}"
            )
        #: Whole-decision memo (None unless sized and the routing cache
        #: is active — the decision layer leans on its epoch transitions).
        self.decision_cache: Optional[DecisionCache] = (
            DecisionCache(max_decisions=decision_cache_size)
            if cacheable and decision_cache_size > 0
            else None
        )
        self.decision_count = 0
        # Instruments resolve once here; a disabled registry hands back
        # shared no-ops, so the decide() hot path pays one call per event.
        registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
        self._m_decisions = registry.counter(
            "vra.decisions", subsystem="core", description="VRA runs (Figure 5)"
        )
        self._m_local_serves = registry.counter(
            "vra.local_serves",
            subsystem="core",
            description="decisions answered by the home-server shortcut",
        )
        self._m_candidates = registry.histogram(
            "vra.candidates",
            subsystem="core",
            description="available remote candidates per routed decision",
        )
        if self.cache is not None and metrics is not None:
            self.cache.attach_metrics(metrics)
        if self.decision_cache is not None and metrics is not None:
            self.decision_cache.attach_metrics(metrics)

    @property
    def cache_stats(self) -> Optional[RoutingCacheStats]:
        """Hit/miss/invalidation counters, or None when caching is off."""
        return self.cache.stats if self.cache is not None else None

    @property
    def decision_cache_stats(self) -> Optional[DecisionCacheStats]:
        """Whole-decision memo counters, or None when that layer is off."""
        return (
            self.decision_cache.stats if self.decision_cache is not None else None
        )

    @property
    def delta_maintenance(self) -> bool:
        """True when the cache patches epochs from dirty-link deltas."""
        return self._incremental is not None

    def count_replayed(self, decision: "VraDecision", candidate_count: int) -> None:
        """Telemetry parity for a decision replayed by an outer memo layer.

        The service's same-state fast path hands back a previously
        returned decision without re-entering :meth:`decide`; this counts
        exactly what a decide() call answering from the decision cache
        would have counted, so every counter and hit rate is identical
        whichever layer served the request.
        """
        self.decision_count += 1
        self._m_decisions.inc()
        memo = self.decision_cache
        if memo is not None:
            memo.count_hit()
        if decision.served_locally:
            self._m_local_serves.inc()
        else:
            self._m_candidates.observe(candidate_count)

    def weights(self) -> Dict[str, float]:
        """Current LVN table ("Calculate the Link Validation Number for
        each network link")."""
        if self.cache is not None:
            return self.cache.weights(self._epoch_of(), self._compute_weights)
        return self._compute_weights()

    def _compute_weights(self) -> Dict[str, float]:
        if self._incremental is not None:
            # Rebase the incremental table on the exact cold result the
            # cache stores, so later patches start from cached truth.
            return self._incremental.rebuild()
        if self._snapshot is not None:
            return self._snapshot.weight_table(self._used_of, self._k)
        return weight_table(self._topology, self._used_of, self._k, self._node_load)

    def _delta_probe(self):
        """Cache callback: patched (table, deltas), or None to full-flush."""
        dirty = self._delta_of()
        if dirty is None:
            return None
        return self._incremental.patch(dirty)

    def _routing_state(self, home_uid: str) -> "tuple[Dict[str, float], DijkstraResult]":
        """The LVN table and shortest-path tree for one decision.

        With caching on, both come from the routing cache under a single
        epoch token fetched once (so the pair is always mutually
        consistent); cached decisions share the table/tree objects, which
        callers treat as read-only audit state.
        """
        if self.cache is None:
            if (
                self._snapshot is not None
                and self._incremental is None
                and not self._trace
            ):
                # Cache-less hot path: fused snapshot call (one version
                # check, no weight-token round-trip).
                return self._snapshot.routing_state(home_uid, self._used_of, self._k)
            weights = self._compute_weights()
            return weights, self._run_dijkstra(home_uid, weights)
        epoch = self._epoch_of()
        weights = self.cache.weights(epoch, self._compute_weights)
        result = self.cache.tree(
            epoch, home_uid, lambda: self._run_dijkstra(home_uid, weights)
        )
        return weights, result

    def _run_dijkstra(self, home_uid: str, weights: Dict[str, float]) -> DijkstraResult:
        if self._snapshot is not None and not self._trace:
            return self._snapshot.dijkstra(home_uid, weights)
        return dijkstra(
            self._topology,
            home_uid,
            weight=lambda link: weights[link.name],
            trace=self._trace,
        )

    def decide(
        self,
        home_uid: str,
        title_id: str,
        holders: Iterable[str],
        poll: Optional[PollFn] = None,
        cache_key: Optional[Hashable] = None,
    ) -> VraDecision:
        """Run Figure 5 for one request.

        Args:
            home_uid: The client's adjacent server (already resolved from
                the client's IP by the service layer).
            title_id: The requested video title.
            holders: Servers that have the title stored (the database's
                title-location list).  Any iterable is accepted; it is
                consumed once, duplicates are dropped, and first-seen
                order is preserved.
            poll: Availability poll; servers answering False are excluded
                ("Poll all of those servers to find out which ones can
                provide the video").  Defaults to everyone-available.
            cache_key: Whole-decision memo key (None skips the decision
                cache).  Passing a key is the caller's promise that the
                key fully determines this call's inputs beyond the
                routing epoch — in particular every holder's poll answer
                (the service layer folds each holder's online/title/
                stream-headroom state into the key).  Callers with ad-hoc
                ``poll`` callbacks must pass None.

        Returns:
            The :class:`VraDecision` with the full audit trail.

        Raises:
            TitleUnavailableError: If no server holds the title.
            RoutingError: If every holder polled out.
            NoReachableHolderError: If holders are available but the home
                server is partitioned from all of them.
        """
        self.decision_count += 1
        self._m_decisions.inc()
        memo = self.decision_cache
        if memo is not None and cache_key is not None:
            # One epoch sync covers both cache layers; the decision cache
            # scopes its invalidation to the same transition the routing
            # cache just absorbed (or flushed on).  The epoch compare is
            # inlined so the overwhelmingly common unchanged-epoch case
            # costs one tuple comparison, not a sync round-trip.
            cache = self.cache
            epoch = self._epoch_of()
            if epoch != cache.epoch:
                memo.apply(cache.sync(epoch))
            entry = memo.get(cache_key)
            if entry is not None:
                decision: VraDecision = entry.decision
                # Replay the per-decision telemetry a cold run would have
                # emitted, so counters stay identical with the cache off.
                if decision.served_locally:
                    self._m_local_serves.inc()
                else:
                    self._m_candidates.observe(entry.candidate_count)
                return decision
        else:
            memo = None
        # Normalize once: the caller may hand us any iterable (generator,
        # set, database list); one pass builds the ordered, deduplicated
        # tuple every later step works from.
        holder_list = tuple(dict.fromkeys(holders))
        if not holder_list:
            raise TitleUnavailableError(
                f"no server in the network has title {title_id!r}"
            )
        poll_fn = poll if poll is not None else (lambda _uid: True)

        # Figure 5: "IF the adjacent to the client video server can provide
        # the requested video THEN authorize ... QUIT".
        if home_uid in holder_list and poll_fn(home_uid):
            self._m_local_serves.inc()
            decision = VraDecision(
                title_id=title_id,
                home_uid=home_uid,
                chosen_uid=home_uid,
                served_locally=True,
                path=Path(nodes=(home_uid,), cost=0.0),
            )
            if memo is not None:
                memo.put(cache_key, decision, tree=None)
            return decision

        # Single pass: each remote holder is polled exactly once and lands
        # in exactly one of the two buckets.
        available: List[str] = []
        rejected: List[str] = []
        for uid in holder_list:
            if uid == home_uid:
                continue
            (available if poll_fn(uid) else rejected).append(uid)
        polled_out = tuple(rejected)
        self._m_candidates.observe(len(available))
        if not available:
            raise RoutingError(
                f"title {title_id!r}: every holder {list(holder_list)} polled "
                "out or is the (title-less) home server"
            )

        weights, result = self._routing_state(home_uid)

        candidate_paths: Dict[str, Path] = {}
        for uid in available:
            if result.reaches(uid):
                candidate_paths[uid] = result.path(uid)
        if not candidate_paths:
            # The partition case: holders answered the poll but every path
            # from the home server is severed.  A distinct subclass so the
            # session retry loop / try_decide can treat it as transient.
            raise NoReachableHolderError(
                f"title {title_id!r}: no candidate server {available} is "
                f"reachable from home server {home_uid!r}"
            )

        # "From those alternative least cost paths choose the one with the
        # smallest cost."  Ties break on server uid for determinism.
        chosen_uid = min(candidate_paths, key=lambda uid: (candidate_paths[uid].cost, uid))
        decision = VraDecision(
            title_id=title_id,
            home_uid=home_uid,
            chosen_uid=chosen_uid,
            served_locally=False,
            path=candidate_paths[chosen_uid],
            candidate_paths=candidate_paths,
            weights=weights,
            dijkstra_result=result,
            polled_out=polled_out,
        )
        if memo is not None:
            memo.put(cache_key, decision, tree=result, candidate_count=len(available))
        return decision
