"""The paper's primary contribution.

* :mod:`repro.core.lvn` — the link-validation equations (1)-(4);
* :mod:`repro.core.vra` — the Virtual Routing Algorithm (Figure 5);
* :mod:`repro.core.dma` — the Disk Manipulation Algorithm (Figure 2);
* :mod:`repro.core.session` — per-cluster streaming with dynamic
  server switching;
* :mod:`repro.core.service` — the :class:`~repro.core.service.VoDService`
  facade wiring database, SNMP, servers and the algorithms together.
"""

from repro.core.dma import DiskManipulationAlgorithm, DmaAction, DmaResult
from repro.core.lvn import (
    DEFAULT_NORMALIZATION_CONSTANT,
    link_traffic,
    link_utilization_term,
    link_validation_number,
    link_value,
    node_validation,
    weight_table,
)
from repro.core.service import ServiceConfig, VoDService
from repro.core.session import SessionRecord, StreamingSession
from repro.core.vra import VirtualRoutingAlgorithm, VraDecision

__all__ = [
    "DEFAULT_NORMALIZATION_CONSTANT",
    "DiskManipulationAlgorithm",
    "DmaAction",
    "DmaResult",
    "ServiceConfig",
    "SessionRecord",
    "StreamingSession",
    "VirtualRoutingAlgorithm",
    "VoDService",
    "VraDecision",
    "link_traffic",
    "link_utilization_term",
    "link_validation_number",
    "link_value",
    "node_validation",
    "weight_table",
]
