"""Incremental maintenance of the LVN weight table.

:func:`repro.core.lvn.weight_table` prices every link from scratch —
O(nodes + links) per snapshot.  Between two VRA decisions, though, almost
nothing moves: an SNMP round that re-reports the same used bandwidth, or a
handful of links whose traffic changed.  :class:`IncrementalLvnTable`
keeps the last table plus the per-node NV map as live state and, given the
set of *dirty* link names (from the topology and database change
journals), re-derives only the entries whose inputs actually moved.

Correctness contract — **bit-for-bit**, not approximately: a patched table
must equal a cold :func:`weight_table` recompute down to the last ulp.
Two design rules enforce that:

* No running accumulators.  NV is re-derived for an affected node by the
  same full-adjacency :func:`~repro.core.lvn.node_validation` sum the cold
  path uses; add/subtract deltas would accumulate float drift.
* Over-patching is harmless.  A journaled link whose value turns out
  unchanged just recomputes entries to their identical values, so the
  journals may be over-inclusive (they only must never be
  under-inclusive).

The per-link workload extension (``node_load``) is intentionally not
supported here; the VRA falls back to cold recomputes when it is active.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.core.lvn import (
    DEFAULT_NORMALIZATION_CONSTANT,
    UsedBandwidthFn,
    link_utilization_term,
    node_validation,
    weight_table_with_nv,
)
from repro.network.routing.dijkstra import LinkDelta
from repro.network.topology import Topology

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.compiled import TopologySnapshot

#: (used_mbps, online) snapshot of one link, as seen through ``used_of``.
_LinkState = Tuple[float, bool]


class IncrementalLvnTable:
    """Live LVN weight table patched from dirty-link deltas.

    Args:
        topology: The network being priced.
        used_of: Used-bandwidth provider — the same one handed to
            :func:`~repro.core.lvn.weight_table`, so both paths read
            identical inputs.
        normalization_constant: The paper's K (eq. 4).
        snapshot: Optional compiled
            :class:`~repro.network.compiled.TopologySnapshot`.  When given,
            cold rebuilds run the array kernel instead of the per-link
            python loops; patches stay python-side either way.  Safe
            because the compiled kernel is bit-for-bit identical to
            :func:`~repro.core.lvn.weight_table_with_nv` — the base the
            patches build on is the same table whichever path produced it.
    """

    def __init__(
        self,
        topology: Topology,
        used_of: Optional[UsedBandwidthFn] = None,
        normalization_constant: float = DEFAULT_NORMALIZATION_CONSTANT,
        snapshot: Optional["TopologySnapshot"] = None,
    ):
        self._topology = topology
        self._used_of = used_of
        self._k = normalization_constant
        self._snapshot = snapshot
        self._table: Optional[Dict[str, float]] = None
        self._nv: Dict[str, float] = {}
        self._link_state: Dict[str, _LinkState] = {}

    @property
    def has_base(self) -> bool:
        """True once a full rebuild has produced a base table to patch."""
        return self._table is not None

    def _observe(self, link) -> _LinkState:
        used = link.used_mbps if self._used_of is None else self._used_of(link)
        return (used, link.online)

    def rebuild(self) -> Dict[str, float]:
        """Cold recompute; resets the live state and returns the table.

        Routed through :func:`~repro.core.lvn.weight_table_with_nv` — the
        exact function the non-incremental path calls — so the base the
        patches build on is the cold result by construction.  With a
        compiled snapshot attached, the array kernel substitutes for it;
        its output is pinned bit-identical by the equivalence properties.
        """
        if self._snapshot is not None:
            table, nv = self._snapshot.weight_table_with_nv(self._used_of, self._k)
        else:
            table, nv = weight_table_with_nv(self._topology, self._used_of, self._k)
        self._table = table
        self._nv = nv
        self._link_state = {
            link.name: self._observe(link) for link in self._topology.links()
        }
        return table

    def patch(
        self, dirty_names: Iterable[str]
    ) -> Optional[Tuple[Dict[str, float], List[LinkDelta]]]:
        """Patch the table given the journaled dirty links.

        Args:
            dirty_names: Names of links that *may* have changed since the
                last :meth:`rebuild`/:meth:`patch` (over-inclusion is
                fine).

        Returns:
            ``(table, deltas)`` on success, where ``table`` is the
            post-patch weight table (the *same* dict object as before when
            no weight moved — past decisions hold references to prior
            tables, so changed tables are copy-on-write) and ``deltas``
            lists every link whose weight or online state changed, for
            cached-tree revalidation.  ``None`` when patching is
            impossible (no base yet, or a journaled name unknown to the
            topology) and the caller must fall back to a cold rebuild.
        """
        if self._table is None:
            return None
        topology = self._topology

        # Filter the journal down to links whose routing-visible inputs
        # actually moved.  The steady-SNMP case — same value re-reported —
        # dies here, leaving nothing to recompute.
        changed: List[Tuple[object, _LinkState, Optional[_LinkState]]] = []
        for name in sorted(set(dirty_names)):
            try:
                link = topology.link_named(name)
            except Exception:
                return None  # journal names a link the topology lost track of
            now = self._observe(link)
            before = self._link_state.get(name)
            if before != now:
                changed.append((link, now, before))

        if not changed:
            return self._table, []

        affected_nodes = sorted(
            {link.a_uid for link, _, _ in changed}
            | {link.b_uid for link, _, _ in changed}
        )
        nv = self._nv
        for uid in affected_nodes:
            nv[uid] = node_validation(topology, uid, self._used_of)

        # Every link touching an affected node needs its weight re-derived
        # (its max(NV_a, NV_b) term may have moved even if its own traffic
        # did not).  Deduplicate by name, keep deterministic order.
        seen = set()
        recompute = []
        for uid in affected_nodes:
            for link in topology.links_at(uid):
                if link.name not in seen:
                    seen.add(link.name)
                    recompute.append(link)

        table = self._table
        old_weights: Dict[str, Optional[float]] = {}
        new_values: Dict[str, float] = {}
        for link in recompute:
            old_weights[link.name] = table.get(link.name)
            lu = link_utilization_term(link, self._used_of, self._k)
            weight = max(nv[link.a_uid], nv[link.b_uid]) + lu
            if old_weights[link.name] != weight:
                new_values[link.name] = weight

        if new_values:
            # Copy-on-write: past decisions (audit traces, cached results)
            # may hold references to the previous table, which must stay
            # exactly what they saw.
            table = dict(table)
            table.update(new_values)
            self._table = table

        # Online flips among the truly-changed links.  A flip invalidates
        # trees even at an identical weight — Dijkstra skips offline links.
        flips = {
            link.name: (
                before[1] if before is not None else False,
                now[1],
            )
            for link, now, before in changed
            if (before[1] if before is not None else False) != now[1]
        }

        # Deltas: every recomputed link whose weight moved, plus every
        # online flip, for cached-tree revalidation.
        deltas: List[LinkDelta] = []
        for link in recompute:
            was_online, now_online = flips.get(link.name, (link.online, link.online))
            if link.name not in new_values and link.name not in flips:
                continue
            deltas.append(
                LinkDelta(
                    link=link,
                    old_weight=old_weights[link.name],
                    new_weight=table[link.name],
                    was_online=was_online,
                    now_online=now_online,
                )
            )

        for link, now, _ in changed:
            self._link_state[link.name] = now
        return table, deltas
