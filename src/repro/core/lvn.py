"""The link-validation equations (1)-(4) of the paper.

Every network link gets a Link Validation Number

    LVN_i = max(NV_a, NV_b) + LU_i                                   (1)

where the node validation NV of a node is its aggregate adjacent-link
utilisation

    NV_x = sum(UBW_m) / sum(LBW_m)   over links m adjacent to x      (2)

and the link utilisation term weighs the link's own traffic by its size

    LU_i = LT_i * LV_i                                               (3)
    LV_i = link_bandwidth_Mbps / K,  with K ~ 10                     (4)

LT_i is used-over-total bandwidth of the link itself (the paper's eq. 5).
Larger LVN = worse link.  The paper calls the weights "of negative value"
but every formula and printed number is a positive cost; we follow the
numbers (DESIGN.md §5, erratum 3).

All functions take an optional ``used_of`` provider mapping a link to its
used bandwidth in Mbps.  The default reads ground truth from the link
object; the VoD service instead passes a database-backed provider so the
VRA sees exactly what the SNMP statistics module last reported — including
its staleness, which is part of the system being reproduced.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import ReproError
from repro.network.link import Link
from repro.network.topology import Topology

#: The paper: "The Normalization Constant suggested is an integer with a
#: value approaching 10."
DEFAULT_NORMALIZATION_CONSTANT = 10.0

UsedBandwidthFn = Callable[[Link], float]

#: Server-configuration extension (the paper's future work: "what the role
#: of every Server configuration factor (CPU speed, available RAM etc.) is
#: to our Video service"): an optional per-node workload term, in [0, 1],
#: added to the node validation.  None (the default everywhere) gives the
#: paper's exact equation (2).
NodeLoadFn = Callable[[str], float]


def _ground_truth(link: Link) -> float:
    return link.used_mbps


def node_validation(
    topology: Topology,
    node_uid: str,
    used_of: Optional[UsedBandwidthFn] = None,
    node_load: Optional[NodeLoadFn] = None,
) -> float:
    """Equation (2): NV of a node — aggregate utilisation of its links.

    Args:
        topology: The network.
        node_uid: The node whose validation to compute.
        used_of: Used-bandwidth provider; defaults to link ground truth.
        node_load: Optional server-workload term (the future-work
            extension); when given, its value for this node — expected in
            [0, 1], e.g. CPU utilisation or stream-slot occupancy — is
            added to the link-based ratio.

    Returns:
        sum(UBW_m) / sum(LBW_m) over the node's adjacent links, plus the
        optional workload term.

    Raises:
        ReproError: If the node has no links (the ratio is undefined; the
            topology validator normally excludes this), or if the workload
            term is negative.
    """
    used = _ground_truth if used_of is None else used_of
    links = topology.links_at(node_uid)
    if not links:
        raise ReproError(f"node {node_uid!r} has no adjacent links; NV undefined")
    online = [link for link in links if link.online]
    if not online:
        # Every adjacent link failed: the node is unreachable, so its NV
        # can never influence a usable path; 0 keeps the table total.
        ratio = 0.0
    else:
        total_used = sum(used(link) for link in online)
        total_capacity = sum(link.capacity_mbps for link in online)
        ratio = total_used / total_capacity
    if node_load is None:
        return ratio
    load = node_load(node_uid)
    if load < 0.0:
        raise ReproError(f"node load for {node_uid!r} cannot be negative, got {load!r}")
    return ratio + load


def link_value(link: Link, normalization_constant: float = DEFAULT_NORMALIZATION_CONSTANT) -> float:
    """Equation (4): LV — points granted per the link's total bandwidth."""
    if not (normalization_constant > 0.0):
        raise ReproError(
            f"normalization constant must be positive, got {normalization_constant!r}"
        )
    return link.capacity_mbps / normalization_constant


def link_traffic(link: Link, used_of: Optional[UsedBandwidthFn] = None) -> float:
    """LT: the link's own used-over-total bandwidth (eq. 5), in [0, 1]."""
    used = _ground_truth if used_of is None else used_of
    return used(link) / link.capacity_mbps


def link_utilization_term(
    link: Link,
    used_of: Optional[UsedBandwidthFn] = None,
    normalization_constant: float = DEFAULT_NORMALIZATION_CONSTANT,
) -> float:
    """Equation (3): LU = LT * LV, the link's traffic aggravation term."""
    return link_traffic(link, used_of) * link_value(link, normalization_constant)


def link_validation_number(
    topology: Topology,
    link: Link,
    used_of: Optional[UsedBandwidthFn] = None,
    normalization_constant: float = DEFAULT_NORMALIZATION_CONSTANT,
    node_load: Optional[NodeLoadFn] = None,
) -> float:
    """Equation (1): the LVN weight the VRA assigns to a link.

    The first term is the worse of the two endpoint node validations (the
    performance burden of the adjacent nodes); the second is the link's own
    traffic aggravation.
    """
    nv_a = node_validation(topology, link.a_uid, used_of, node_load)
    nv_b = node_validation(topology, link.b_uid, used_of, node_load)
    return max(nv_a, nv_b) + link_utilization_term(link, used_of, normalization_constant)


def weight_table(
    topology: Topology,
    used_of: Optional[UsedBandwidthFn] = None,
    normalization_constant: float = DEFAULT_NORMALIZATION_CONSTANT,
    node_load: Optional[NodeLoadFn] = None,
) -> Dict[str, float]:
    """LVN for every link of the topology, keyed by link name.

    Node validations are computed once per node rather than twice per link,
    so one snapshot costs O(nodes + links).
    """
    return weight_table_with_nv(topology, used_of, normalization_constant, node_load)[0]


def weight_table_with_nv(
    topology: Topology,
    used_of: Optional[UsedBandwidthFn] = None,
    normalization_constant: float = DEFAULT_NORMALIZATION_CONSTANT,
    node_load: Optional[NodeLoadFn] = None,
) -> Tuple[Dict[str, float], Dict[str, float]]:
    """:func:`weight_table` plus the per-node NV map it was built from.

    The incremental LVN maintenance layer (delta-scoped routing-cache
    invalidation) keeps the NV map as live state and re-derives only the
    entries whose inputs moved; routing both the cold and the patched
    paths through this one function is what keeps them bit-for-bit equal.
    """
    used = _ground_truth if used_of is None else used_of
    nv: Dict[str, float] = {
        node.uid: node_validation(topology, node.uid, used, node_load)
        for node in topology.nodes()
    }
    table: Dict[str, float] = {}
    for link in topology.links():
        lu = link_utilization_term(link, used, normalization_constant)
        table[link.name] = max(nv[link.a_uid], nv[link.b_uid]) + lu
    return table, nv
