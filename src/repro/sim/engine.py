"""The discrete-event simulation engine.

:class:`Simulator` maintains a binary heap of :class:`~repro.sim.events.Event`
records and a simulated clock.  Everything in the reproduction — SNMP
collector periods, video cluster transfer completions, client arrivals —
is driven by this one loop, which keeps runs fully deterministic for a given
seed and schedule.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import Event

#: Heaps smaller than this are never compacted: sweeping a few dozen
#: entries off the top lazily is cheaper than any rebuild.
COMPACTION_FLOOR = 64


class EventHandle:
    """Cancellation handle returned by :meth:`Simulator.schedule`.

    Cancelling is O(1): the handle is flagged and the engine discards the
    event when it reaches the top of the heap.
    """

    __slots__ = ("event", "_cancelled", "_fired", "_on_cancel")

    def __init__(self, event: Event, on_cancel: Optional[Callable[[], None]] = None):
        self.event = event
        self._cancelled = False
        self._fired = False
        self._on_cancel = on_cancel

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the event's callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still waiting in the heap."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Prevent the event from firing.

        Returns:
            True if the event was pending and is now cancelled; False if it
            had already fired or was already cancelled.
        """
        if not self.pending:
            return False
        self._cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()
        return True


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(5.0, my_callback, arg1)
        sim.run(until=100.0)

    Time units are seconds by convention throughout the library (the GRNET
    case study expresses times of day as seconds since midnight).
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: List[Tuple[Tuple[float, int], EventHandle]] = []
        self._seq = 0
        self._running = False
        self._stopped = False
        self._events_fired = 0
        self._pending = 0
        self._compactions = 0
        #: Optional callback invoked after each cancelled-carcass heap
        #: compaction; the service wires this to the
        #: ``engine.heap_compactions`` telemetry counter.
        self.on_compaction: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------ #
    # clock
    # ------------------------------------------------------------------ #
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (diagnostic)."""
        return self._events_fired

    @property
    def pending_count(self) -> int:
        """Number of pending (scheduled, not cancelled, not fired) events.

        Maintained as a live counter updated on schedule/cancel/fire, so
        reading it is O(1) rather than a scan of the heap.
        """
        return self._pending

    @property
    def heap_depth(self) -> int:
        """Raw heap length, cancelled carcasses included.

        Telemetry gauge: ``heap_depth - pending_count`` is the number of
        cancelled events still waiting to be swept off the heap, which is
        the engine's memory overhead from cancellation-heavy workloads.
        """
        return len(self._heap)

    @property
    def compactions(self) -> int:
        """Cancelled-carcass heap compactions performed (diagnostic).

        The engine rebuilds the heap whenever carcasses outnumber pending
        events (above :data:`COMPACTION_FLOOR`), so cancellation-heavy
        retry/requeue workloads hold O(pending) memory instead of growing
        the heap until the carcasses happen to reach the top.
        """
        return self._compactions

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        name: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to fire ``delay`` from now.

        Args:
            delay: Non-negative offset from the current simulated time.
            callback: Callable invoked when the event fires.
            *args: Positional arguments stored with the event.
            name: Optional label used in error messages and traces.

        Raises:
            SchedulingError: If ``delay`` is negative or not finite.
        """
        return self.schedule_at(self._now + self._check_delay(delay), callback, *args, name=name)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        name: str = "",
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute simulated time.

        Raises:
            SchedulingError: If ``time`` is before the current time.
        """
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule event {name or callback!r} at t={time}, "
                f"which is before current time t={self._now}"
            )
        event = Event(time=float(time), seq=self._seq, callback=callback, args=args, name=name)
        self._seq += 1
        handle = EventHandle(event, on_cancel=self._note_cancel)
        heapq.heappush(self._heap, (event.key, handle))
        self._pending += 1
        return handle

    def schedule_many(
        self,
        entries: Iterable[Sequence[Any]],
        *,
        absolute: bool = False,
    ) -> List[EventHandle]:
        """Bulk-schedule a batch of events in one heap operation.

        Each entry is ``(delay, callback)``, ``(delay, callback, args)`` or
        ``(delay, callback, args, name)`` — the same semantics as one
        :meth:`schedule` call per entry (``absolute=True`` reads the first
        element as an absolute time, i.e. :meth:`schedule_at`), and the
        resulting firing order is identical: events pop by ``(time, seq)``
        no matter how they entered the heap.  For batches that rival the
        heap's size, one ``heapify`` over the extended list is O(n + k)
        instead of k pushes at O(k log n).

        Returns:
            Handles in entry order.

        Raises:
            SchedulingError: On the first invalid entry; the heap is left
                untouched (no partial batch is scheduled).
        """
        new: List[Tuple[Tuple[float, int], EventHandle]] = []
        handles: List[EventHandle] = []
        for entry in entries:
            time_value, callback = entry[0], entry[1]
            args = tuple(entry[2]) if len(entry) > 2 else ()
            name = entry[3] if len(entry) > 3 else ""
            if absolute:
                time = float(time_value)
                if time < self._now:
                    raise SchedulingError(
                        f"cannot schedule event {name or callback!r} at t={time}, "
                        f"which is before current time t={self._now}"
                    )
            else:
                time = self._now + self._check_delay(time_value)
            event = Event(time=time, seq=self._seq, callback=callback, args=args, name=name)
            self._seq += 1
            handle = EventHandle(event, on_cancel=self._note_cancel)
            new.append((event.key, handle))
            handles.append(handle)
        if not new:
            return handles
        heap = self._heap
        if len(new) >= max(len(heap) // 4, 8):
            heap.extend(new)
            heapq.heapify(heap)
        else:
            for item in new:
                heapq.heappush(heap, item)
        self._pending += len(new)
        return handles

    def _note_cancel(self) -> None:
        self._pending -= 1
        # Compact when carcasses outnumber live events: lazy top-sweeping
        # alone lets a cancellation-heavy workload (retry storms, requeue
        # churn) grow the heap with bodies that never reach the top.
        heap = self._heap
        if len(heap) >= COMPACTION_FLOOR and len(heap) - self._pending > self._pending:
            self._compact()

    def _compact(self) -> None:
        heap = self._heap
        live = [entry for entry in heap if entry[1].pending]
        # In-place so a running event loop holding a reference to the heap
        # list keeps seeing the compacted state.
        heap[:] = live
        heapq.heapify(heap)
        self._compactions += 1
        if self.on_compaction is not None:
            self.on_compaction()

    @staticmethod
    def _check_delay(delay: float) -> float:
        if not (delay >= 0.0):  # also rejects NaN
            raise SchedulingError(f"delay must be non-negative and finite, got {delay!r}")
        if delay == float("inf"):
            raise SchedulingError("delay must be finite")
        return float(delay)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the heap is empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][1].event.time

    def step(self) -> Optional[Event]:
        """Fire the single next pending event.

        Returns:
            The event that fired, or None if no pending events remain.
        """
        self._drop_cancelled()
        if not self._heap:
            return None
        _, handle = heapq.heappop(self._heap)
        return self._fire(handle)

    def _fire(self, handle: EventHandle) -> Event:
        """Execute one popped pending event (clock advance + bookkeeping)."""
        event = handle.event
        self._now = event.time
        handle._fired = True
        self._pending -= 1
        self._events_fired += 1
        event.fire()
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Args:
            until: Stop once simulated time would pass this instant; events
                scheduled exactly at ``until`` still fire.  None runs until
                the heap drains.
            max_events: Optional safety valve on the number of events fired.

        Returns:
            The simulated time when the loop stopped.  If ``until`` was given
            and the heap drained early, the clock is advanced to ``until`` so
            back-to-back ``run`` calls compose naturally.

        Raises:
            SimulationError: If the simulator is already running (re-entrant
                ``run`` from inside a callback).
        """
        if self._running:
            raise SimulationError("Simulator.run is not re-entrant; use schedule from callbacks")
        if until is not None and until < self._now:
            raise SchedulingError(f"run until={until} is before current time t={self._now}")
        self._running = True
        self._stopped = False
        fired = 0
        heap = self._heap
        sweep = self._drop_cancelled
        try:
            # Fused loop: one cancelled-carcass sweep and one heap pop per
            # event, instead of the peek()+step() pair (each of which swept
            # the heap top and peek() re-read what step() popped).
            while not self._stopped:
                sweep()
                if not heap:
                    break
                handle = heap[0][1]
                if until is not None and handle.event.time > until:
                    break
                if max_events is not None and fired >= max_events:
                    break
                heapq.heappop(heap)
                self._fire(handle)
                fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now

    def stop(self) -> None:
        """Request the current :meth:`run` loop to exit after this event."""
        self._stopped = True

    def _drop_cancelled(self) -> None:
        """Sweep cancelled carcasses off the heap top.

        The one sweep shared by :meth:`peek`, :meth:`step` and the
        :meth:`run` loop, so the carcass-skipping rule lives in one place.
        """
        heap = self._heap
        while heap and not heap[0][1].pending:
            heapq.heappop(heap)
