"""Structured event tracing.

A :class:`Tracer` collects timestamped, categorised events from anywhere
in the service (VRA decisions, DMA actions, cluster deliveries, SNMP
polls) for debugging and post-run analysis.  Tracing is opt-in and cheap:
a disabled tracer discards events without formatting anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes:
        time: Simulated time of the event.
        category: Dotted category, e.g. ``"vra.decision"``.
        message: Human-readable one-liner.
        data: Structured payload for analysis code.
    """

    time: float
    category: str
    message: str
    data: Dict[str, object]

    def format(self) -> str:
        """``[   123.4s] vra.decision  chose U4`` style line."""
        return f"[{self.time:10.1f}s] {self.category:<18} {self.message}"


class Tracer:
    """Collects :class:`TraceEvent` records.

    Args:
        enabled: Disabled tracers drop events immediately.
        capacity: Keep at most this many events (oldest dropped first);
            None keeps everything.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        self.enabled = enabled
        self.capacity = capacity
        self._events: List[TraceEvent] = []
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped_count(self) -> int:
        """Events discarded due to the capacity bound."""
        return self._dropped

    def record(
        self,
        time: float,
        category: str,
        message: str,
        **data: object,
    ) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        self._events.append(
            TraceEvent(time=time, category=category, message=message, data=data)
        )
        if self.capacity is not None and len(self._events) > self.capacity:
            overflow = len(self._events) - self.capacity
            del self._events[:overflow]
            self._dropped += overflow

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        """All events, optionally filtered by category prefix.

        ``category="vra"`` matches ``"vra"`` and ``"vra.decision"`` but
        not ``"vrawhatever"``.
        """
        if category is None:
            return list(self._events)
        prefix = category + "."
        return [
            event
            for event in self._events
            if event.category == category or event.category.startswith(prefix)
        ]

    def between(self, start: float, end: float) -> List[TraceEvent]:
        """Events with start <= time < end."""
        return [e for e in self._events if start <= e.time < end]

    def categories(self) -> List[str]:
        """Distinct categories recorded, sorted."""
        return sorted({event.category for event in self._events})

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
        self._dropped = 0

    def dump(self, limit: Optional[int] = None) -> str:
        """Formatted multi-line dump of the newest ``limit`` events."""
        events = self._events if limit is None else self._events[-limit:]
        return "\n".join(event.format() for event in events)
