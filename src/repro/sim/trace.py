"""Structured event tracing.

A :class:`Tracer` collects timestamped, categorised events from anywhere
in the service (VRA decisions, DMA actions, cluster deliveries, SNMP
polls) for debugging and post-run analysis.  Tracing is opt-in and cheap:
a disabled tracer discards events without formatting anything.

The tracer is also the sink for the structured session spans of
:mod:`repro.obs.spans`; :meth:`Tracer.to_jsonl` / :meth:`Tracer.export_jsonl`
serialise a run's full trace as JSON Lines for offline analysis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, TextIO

#: Categories the service and its spans are known to emit.  ``format()``
#: pads to the longest registered category so dump columns line up; new
#: categories register themselves on first record.
_REGISTERED_CATEGORIES: Set[str] = {
    "dma.pass",
    "placement.pass",
    "request.blocked",
    "request.submitted",
    "service.expanded",
    "service.snapshot",
    "session.finished",
    "snmp.round",
    "span.cluster.delivered",
    "span.finished",
    "span.submitted",
    "span.switch",
    "span.vra.decision",
    "vra.decision",
}
_PAD_WIDTH: int = max(len(category) for category in _REGISTERED_CATEGORIES)


def register_category(category: str) -> None:
    """Register a category so :meth:`TraceEvent.format` pads wide enough.

    Idempotent; called automatically by :meth:`Tracer.record`, and
    callable up front by extensions that format events directly.
    """
    global _PAD_WIDTH
    if category not in _REGISTERED_CATEGORIES:
        _REGISTERED_CATEGORIES.add(category)
        if len(category) > _PAD_WIDTH:
            _PAD_WIDTH = len(category)


def registered_categories() -> List[str]:
    """Every category registered so far, sorted."""
    return sorted(_REGISTERED_CATEGORIES)


def category_pad_width() -> int:
    """Current pad width: the longest registered category."""
    return _PAD_WIDTH


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes:
        time: Simulated time of the event.
        category: Dotted category, e.g. ``"vra.decision"``.
        message: Human-readable one-liner.
        data: Structured payload for analysis code.
    """

    time: float
    category: str
    message: str
    data: Dict[str, object]

    def format(self) -> str:
        """``[   123.4s] vra.decision  chose U4`` style line.

        The category column is padded to the longest *registered*
        category (see :func:`register_category`), so no category ever
        overflows its column and dumps stay aligned.
        """
        register_category(self.category)
        return f"[{self.time:10.1f}s] {self.category:<{_PAD_WIDTH}} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation of this event."""
        return {
            "time": self.time,
            "category": self.category,
            "message": self.message,
            **{f"data.{key}": _jsonable(value) for key, value in self.data.items()},
        }


def _jsonable(value: object) -> object:
    if isinstance(value, tuple):
        return list(value)
    return value


class Tracer:
    """Collects :class:`TraceEvent` records.

    Args:
        enabled: Disabled tracers drop events immediately.
        capacity: Keep at most this many events (oldest dropped first);
            None keeps everything.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        self.enabled = enabled
        self.capacity = capacity
        self._events: List[TraceEvent] = []
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped_count(self) -> int:
        """Events discarded due to the capacity bound.

        Part of the public API: the ``obs`` CLI summaries report it so a
        truncated trace is never mistaken for a complete one.
        """
        return self._dropped

    def record(
        self,
        time: float,
        category: str,
        message: str,
        **data: object,
    ) -> None:
        """Record one event (no-op when disabled)."""
        if not self.enabled:
            return
        register_category(category)
        self._events.append(
            TraceEvent(time=time, category=category, message=message, data=data)
        )
        if self.capacity is not None and len(self._events) > self.capacity:
            overflow = len(self._events) - self.capacity
            del self._events[:overflow]
            self._dropped += overflow

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        """All events, optionally filtered by category prefix.

        ``category="vra"`` matches ``"vra"`` and ``"vra.decision"`` but
        not ``"vrawhatever"``.
        """
        if category is None:
            return list(self._events)
        prefix = category + "."
        return [
            event
            for event in self._events
            if event.category == category or event.category.startswith(prefix)
        ]

    def between(self, start: float, end: float) -> List[TraceEvent]:
        """Events with start <= time < end."""
        return [e for e in self._events if start <= e.time < end]

    def categories(self) -> List[str]:
        """Distinct categories recorded, sorted."""
        return sorted({event.category for event in self._events})

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()
        self._dropped = 0

    def dump(self, limit: Optional[int] = None) -> str:
        """Formatted multi-line dump of the newest ``limit`` events."""
        events = self._events if limit is None else self._events[-limit:]
        return "\n".join(event.format() for event in events)

    # ------------------------------------------------------------------ #
    # JSONL export
    # ------------------------------------------------------------------ #
    def to_jsonl(self, category: Optional[str] = None) -> str:
        """The trace as JSON Lines text (one event per line).

        Args:
            category: Optional category-prefix filter, as in
                :meth:`events`.
        """
        return "\n".join(
            json.dumps(event.to_dict(), sort_keys=True)
            for event in self.events(category)
        )

    def export_jsonl(self, out: TextIO, category: Optional[str] = None) -> int:
        """Write the trace as JSON Lines; returns the event count."""
        count = 0
        for event in self.events(category):
            out.write(json.dumps(event.to_dict(), sort_keys=True))
            out.write("\n")
            count += 1
        return count
