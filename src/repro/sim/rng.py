"""Reproducible named random-number streams.

Distributed-systems simulations need *independent* randomness per concern
(arrivals at Patra must not perturb title choices at Athens when a parameter
changes).  :class:`RngRegistry` derives one ``random.Random`` stream per name
from a master seed, so adding a new consumer never shifts existing streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterator


class RngRegistry:
    """A family of independent, deterministically seeded RNG streams.

    Example::

        rngs = RngRegistry(master_seed=42)
        arrivals = rngs.stream("arrivals")       # stable across runs
        titles = rngs.stream("titles.athens")    # independent of arrivals
    """

    def __init__(self, master_seed: int = 0):
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream for ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive_seed(name))
        return self._streams[name]

    def reseed(self, master_seed: int) -> None:
        """Reset the registry under a new master seed, dropping all streams."""
        self.master_seed = int(master_seed)
        self._streams.clear()

    def names(self) -> Iterator[str]:
        """Names of streams created so far."""
        return iter(sorted(self._streams))

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")
