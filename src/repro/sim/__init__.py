"""Discrete-event simulation engine.

This subpackage is the substrate on which the whole VoD service runs: a
deterministic event-heap simulator (:class:`~repro.sim.engine.Simulator`),
generator-based cooperative processes (:mod:`repro.sim.process`), periodic
tasks (:mod:`repro.sim.timers`) and reproducible named random-number streams
(:mod:`repro.sim.rng`).

The paper's service reacts to wall-clock periodic SNMP updates (every 1-2
minutes); under this engine those become periodic simulated-time tasks with
identical semantics, which is the substitution documented in DESIGN.md §2.
"""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.events import Event
from repro.sim.process import Delay, Process, Signal, WaitSignal
from repro.sim.rng import RngRegistry
from repro.sim.timers import PeriodicTask

__all__ = [
    "Delay",
    "Event",
    "EventHandle",
    "PeriodicTask",
    "Process",
    "RngRegistry",
    "Signal",
    "Simulator",
    "WaitSignal",
]
