"""Event record used by the simulation engine.

An :class:`Event` pairs a firing time with a callback.  Events are ordered by
``(time, seq)`` where ``seq`` is a monotonically increasing sequence number,
so two events scheduled for the same instant fire in FIFO order — a property
the tests assert because stream bookkeeping depends on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Tuple


@dataclass(frozen=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Simulated time at which the event fires.
        seq: Tie-breaking sequence number (scheduling order).
        callback: Zero-result callable invoked when the event fires.
        args: Positional arguments passed to ``callback``.
        name: Optional human-readable label used in traces and error text.
        key: The ``(time, seq)`` heap key, precomputed at construction so
            the engine's push path reuses one tuple instead of building it
            per call.
    """

    time: float
    seq: int
    callback: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    name: str = ""
    key: Tuple[float, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "key", (self.time, self.seq))

    def sort_key(self) -> Tuple[float, int]:
        """Key defining the engine's total order over events."""
        return self.key

    def fire(self) -> Any:
        """Invoke the callback with its stored arguments."""
        return self.callback(*self.args)

    def label(self) -> str:
        """Readable label for traces: the explicit name or callback repr."""
        if self.name:
            return self.name
        return getattr(self.callback, "__qualname__", repr(self.callback))
