"""Periodic task helper.

The paper's SNMP statistics module re-samples link utilisation "every time a
predefined time limit expires (1-2 minutes)".  :class:`PeriodicTask` is the
engine-level primitive for that behaviour: it fires a callback every
``period`` simulated seconds until stopped.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SchedulingError
from repro.sim.engine import EventHandle, Simulator


class PeriodicTask:
    """Fires ``callback()`` every ``period`` seconds of simulated time.

    The first firing happens at ``start_delay`` (default: one full period)
    after :meth:`start`.  The callback may call :meth:`stop` to end the
    series, and :meth:`set_period` to change the cadence from the next
    firing onward.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        name: str = "periodic",
    ):
        if not (period > 0.0):
            raise SchedulingError(f"period must be positive, got {period!r}")
        self._sim = sim
        self._period = float(period)
        self._callback = callback
        self.name = name
        self._handle: Optional[EventHandle] = None
        self._fire_count = 0
        self._running = False

    @property
    def period(self) -> float:
        """Current firing period in simulated seconds."""
        return self._period

    @property
    def fire_count(self) -> int:
        """Number of times the callback has run."""
        return self._fire_count

    @property
    def running(self) -> bool:
        """True while the task is armed."""
        return self._running

    def set_period(self, period: float) -> None:
        """Change the period; takes effect when the next firing is armed."""
        if not (period > 0.0):
            raise SchedulingError(f"period must be positive, got {period!r}")
        self._period = float(period)

    def start(self, start_delay: Optional[float] = None) -> None:
        """Arm the task.  ``start_delay`` defaults to one period."""
        if self._running:
            return
        self._running = True
        delay = self._period if start_delay is None else start_delay
        self._handle = self._sim.schedule(delay, self._fire, name=f"{self.name}:tick")

    def stop(self) -> None:
        """Disarm the task; safe to call from inside the callback."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if not self._running:
            return
        self._fire_count += 1
        self._callback()
        if self._running:
            self._handle = self._sim.schedule(self._period, self._fire, name=f"{self.name}:tick")
