"""Generator-based cooperative processes on top of the event engine.

A :class:`Process` wraps a generator that yields either

* :class:`Delay` (or a bare non-negative number) — suspend for that long, or
* :class:`WaitSignal` — suspend until a :class:`Signal` is triggered.

This is the idiom used by long-lived actors in the simulation, e.g. a
streaming session that alternates "download cluster" / "re-run VRA" steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional

from repro.errors import SimulationError
from repro.sim.engine import EventHandle, Simulator


@dataclass(frozen=True)
class Delay:
    """Yield value: suspend the process for ``duration`` simulated seconds."""

    duration: float


class Signal:
    """A one-to-many wake-up condition.

    Processes yield :class:`WaitSignal` on a signal; :meth:`trigger` resumes
    every waiter at the current simulated time, passing ``payload`` back as
    the value of the ``yield`` expression.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._waiters: List[Process] = []
        self._trigger_count = 0

    @property
    def trigger_count(self) -> int:
        """Number of times this signal has been triggered."""
        return self._trigger_count

    @property
    def waiter_count(self) -> int:
        """Number of processes currently blocked on this signal."""
        return len(self._waiters)

    def trigger(self, sim: Simulator, payload: Any = None) -> int:
        """Wake all waiting processes via zero-delay events.

        Returns:
            The number of processes that were woken.
        """
        self._trigger_count += 1
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            sim.schedule(0.0, process._resume, payload, name=f"signal:{self.name}")
        return len(waiters)

    def _register(self, process: "Process") -> None:
        self._waiters.append(process)


@dataclass(frozen=True)
class WaitSignal:
    """Yield value: suspend the process until ``signal`` is triggered."""

    signal: Signal


class Process:
    """Drives a generator as a cooperative simulated process.

    The generator's ``return`` value is captured in :attr:`result`; an
    uncaught exception is captured in :attr:`error` and re-raised from
    :meth:`check`.
    """

    def __init__(self, sim: Simulator, generator: Generator[Any, Any, Any], name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(f"Process requires a generator, got {type(generator).__name__}")
        self._sim = sim
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._finished = False
        self._pending_handle: Optional[EventHandle] = None
        self.finished_signal = Signal(name=f"{self.name}.finished")
        # Kick off on the next zero-delay tick so construction never runs
        # user code synchronously.
        self._pending_handle = sim.schedule(0.0, self._resume, None, name=f"start:{self.name}")

    @property
    def finished(self) -> bool:
        """True once the generator has returned or raised."""
        return self._finished

    def check(self) -> Any:
        """Return the process result, re-raising any captured exception."""
        if self.error is not None:
            raise self.error
        return self.result

    def interrupt(self) -> bool:
        """Cancel the process's pending wake-up and finish it immediately.

        Returns:
            True if the process was running and is now interrupted.
        """
        if self._finished:
            return False
        if self._pending_handle is not None:
            self._pending_handle.cancel()
            self._pending_handle = None
        self._generator.close()
        self._finish()
        return True

    def poke(self, payload: Any = None) -> bool:
        """Wake a process sleeping on a :class:`Delay` at the current time.

        The pending delay event is cancelled and the generator resumes via
        a zero-delay event with ``payload`` as the value of the ``yield``
        expression.  Unlike :meth:`interrupt` the generator keeps running —
        this is the preemption primitive the session supervisor uses to
        pull a streaming session out of a long transfer step the moment a
        fault hits its source.  A process waiting on a signal (no pending
        delay event) or already finished is left alone.

        Returns:
            True if the process was sleeping and has been rescheduled.
        """
        if self._finished or self._pending_handle is None:
            return False
        if not self._pending_handle.pending:
            return False
        self._pending_handle.cancel()
        self._pending_handle = self._sim.schedule(
            0.0, self._resume, payload, name=f"poke:{self.name}"
        )
        return True

    # ------------------------------------------------------------------ #
    def _resume(self, payload: Any) -> None:
        if self._finished:
            return
        self._pending_handle = None
        try:
            yielded = self._generator.send(payload)
        except StopIteration as stop:
            self.result = stop.value
            self._finish()
            return
        except Exception as exc:  # capture, don't kill the event loop
            self.error = exc
            self._finish()
            return
        self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if isinstance(yielded, Delay):
            self._pending_handle = self._sim.schedule(
                yielded.duration, self._resume, None, name=f"delay:{self.name}"
            )
        elif isinstance(yielded, (int, float)):
            self._pending_handle = self._sim.schedule(
                float(yielded), self._resume, None, name=f"delay:{self.name}"
            )
        elif isinstance(yielded, WaitSignal):
            yielded.signal._register(self)
        else:
            self.error = SimulationError(
                f"process {self.name} yielded unsupported value {yielded!r}; "
                "yield a Delay, a number, or a WaitSignal"
            )
            self._generator.close()
            self._finish()

    def _finish(self) -> None:
        self._finished = True
        self.finished_signal.trigger(self._sim, self)
