"""JSON (de)serialisation for topologies, catalogs and scenarios.

The paper's service is configured by administrators entering node, link
and title information; this module gives that configuration a durable
format so deployments can be versioned, shared and fed to the CLI
(``repro simulate --topology net.json``).

Schema (all sizes in the units used throughout the library)::

    {
      "name": "GRNET",
      "nodes": [{"uid": "U1", "name": "Athens"}, ...],
      "links": [{"a": "U2", "b": "U1", "capacity_mbps": 2.0,
                 "name": "Patra-Athens", "background_mbps": 0.2}, ...]
    }

    {
      "titles": [{"title_id": "movie-1", "name": "...", "size_mb": 700.0,
                  "duration_s": 5400.0, "bitrate_mbps": 1.04}, ...]
    }
"""

from __future__ import annotations

import json
from pathlib import Path as FilePath
from typing import Dict, List, Union

from repro.errors import ReproError
from repro.network.link import Link
from repro.network.node import Node
from repro.network.topology import Topology
from repro.storage.video import VideoTitle

PathLike = Union[str, FilePath]


class SerializationError(ReproError):
    """Raised for malformed topology/catalog documents."""


# ---------------------------------------------------------------------- #
# topology
# ---------------------------------------------------------------------- #
def topology_to_dict(topology: Topology) -> Dict:
    """Serialise a topology (including current background traffic)."""
    return {
        "name": topology.name,
        "nodes": [
            {"uid": node.uid, "name": node.name} for node in topology.nodes()
        ],
        "links": [
            {
                "a": link.a_uid,
                "b": link.b_uid,
                "capacity_mbps": link.capacity_mbps,
                "name": link.name,
                "background_mbps": link.background_mbps,
                "online": link.online,
            }
            for link in topology.links()
        ],
    }


def topology_from_dict(document: Dict) -> Topology:
    """Build a topology from :func:`topology_to_dict` output.

    Raises:
        SerializationError: On missing keys or malformed entries.
    """
    try:
        topology = Topology(name=document.get("name", "network"))
        for node_doc in document["nodes"]:
            topology.add_node(
                Node(uid=node_doc["uid"], name=node_doc.get("name", ""))
            )
        for link_doc in document["links"]:
            link = Link(
                a_uid=link_doc["a"],
                b_uid=link_doc["b"],
                capacity_mbps=float(link_doc["capacity_mbps"]),
                name=link_doc.get("name", ""),
            )
            topology.add_link(link)
            link.set_background_mbps(float(link_doc.get("background_mbps", 0.0)))
            link.online = bool(link_doc.get("online", True))
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed topology document: {exc}") from exc
    return topology


def save_topology(topology: Topology, path: PathLike) -> None:
    """Write a topology to a JSON file."""
    FilePath(path).write_text(
        json.dumps(topology_to_dict(topology), indent=2) + "\n", encoding="utf-8"
    )


def load_topology(path: PathLike) -> Topology:
    """Read a topology from a JSON file.

    Raises:
        SerializationError: On unreadable or malformed files.
    """
    try:
        document = json.loads(FilePath(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot load topology from {path}: {exc}") from exc
    return topology_from_dict(document)


# ---------------------------------------------------------------------- #
# catalogs
# ---------------------------------------------------------------------- #
def catalog_to_dict(titles: List[VideoTitle]) -> Dict:
    """Serialise a title catalog."""
    return {
        "titles": [
            {
                "title_id": title.title_id,
                "name": title.name,
                "size_mb": title.size_mb,
                "duration_s": title.duration_s,
                "bitrate_mbps": title.bitrate_mbps,
            }
            for title in titles
        ]
    }


def catalog_from_dict(document: Dict) -> List[VideoTitle]:
    """Build a catalog from :func:`catalog_to_dict` output.

    Raises:
        SerializationError: On missing keys or malformed entries.
    """
    try:
        return [
            VideoTitle(
                title_id=doc["title_id"],
                name=doc.get("name", ""),
                size_mb=float(doc["size_mb"]),
                duration_s=float(doc["duration_s"]),
                bitrate_mbps=float(doc.get("bitrate_mbps", 0.0)),
            )
            for doc in document["titles"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed catalog document: {exc}") from exc


def save_catalog(titles: List[VideoTitle], path: PathLike) -> None:
    """Write a catalog to a JSON file."""
    FilePath(path).write_text(
        json.dumps(catalog_to_dict(titles), indent=2) + "\n", encoding="utf-8"
    )


def load_catalog(path: PathLike) -> List[VideoTitle]:
    """Read a catalog from a JSON file.

    Raises:
        SerializationError: On unreadable or malformed files.
    """
    try:
        document = json.loads(FilePath(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot load catalog from {path}: {exc}") from exc
    return catalog_from_dict(document)
