"""Experiment harness reproducing the paper's evaluation.

* :mod:`repro.experiments.casestudy` — Tables 2-5 and Experiments A-D on
  the GRNET backbone, with paper-vs-computed diffing;
* :mod:`repro.experiments.harness` — service-level experiment runner used
  by the comparison/ablation benchmarks (X1-X4 in DESIGN.md);
* :mod:`repro.experiments.placement` — placement-policy comparison (DMA
  vs prefix vs popularity-weighted partial) with replay/equivalence gates;
* :mod:`repro.experiments.report` — ASCII table rendering in the paper's
  layouts;
* :mod:`repro.experiments.resilience` — seeded fault-storm (chaos) runs
  with retry/backoff enabled, reduced to a deterministic
  :class:`ResilienceReport`.
"""

from repro.experiments.casestudy import (
    EXPERIMENTS,
    ExperimentOutcome,
    ExperimentSpec,
    compute_table2_utilization_percent,
    compute_table3_lvn,
    run_experiment,
    table2_deltas,
    table3_deltas,
)
from repro.experiments.harness import ServiceExperiment, SweepResult, run_service_experiment
from repro.experiments.placement import (
    PlacementComparison,
    PlacementOutcome,
    render_placement_comparison,
    run_placement_experiment,
    session_fingerprint,
)
from repro.experiments.resilience import (
    ResilienceReport,
    ResilienceRun,
    render_resilience_report,
    run_resilience_experiment,
)
from repro.experiments.report import (
    render_dijkstra_trace,
    render_experiment,
    render_table,
    render_table2,
    render_table3,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentOutcome",
    "ExperimentSpec",
    "PlacementComparison",
    "PlacementOutcome",
    "ResilienceReport",
    "ResilienceRun",
    "ServiceExperiment",
    "SweepResult",
    "compute_table2_utilization_percent",
    "compute_table3_lvn",
    "render_dijkstra_trace",
    "render_experiment",
    "render_placement_comparison",
    "render_resilience_report",
    "render_table",
    "render_table2",
    "render_table3",
    "run_experiment",
    "run_placement_experiment",
    "run_resilience_experiment",
    "run_service_experiment",
    "session_fingerprint",
    "table2_deltas",
    "table3_deltas",
]
