"""Packaged ablation scenarios.

The *better-source-appears* scenario is the deterministic distillation of
the paper's dynamic-switching narrative: a client at Patra starts a long
download from Thessaloniki; mid-stream the route to Thessaloniki congests
while a fresh copy appears at Athens.  A per-cluster VRA re-decision (the
paper's behaviour) escapes the congestion; a frozen decision rides it to
the end.  Used by the X1 switching ablation, the X4 cluster-size sweep and
the ``sweep-cluster-size`` CLI command.

Sweep points are independent simulations, so :func:`better_source_sweep`
can fan them out over a :class:`~concurrent.futures.ProcessPoolExecutor`
(``jobs > 1``).  Each worker runs its own simulator from the same
deterministic initial conditions, and results come back in sweep order —
the output is byte-identical to a serial run, just faster.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterator, Optional, Sequence, Tuple

from repro.core.service import ServiceConfig, VoDService
from repro.core.session import SessionRecord
from repro.network.grnet import apply_traffic_sample, build_grnet_topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle

#: The long title downloaded in the switching scenarios: 1.5 GB over 2 h
#: (bitrate ~1.67 Mbps — fits an uncongested 2 Mb link, starves on the
#: poisoned ones).
SWITCHING_TITLE = VideoTitle("feature", size_mb=1_500.0, duration_s=7_200.0)

#: Default cluster sizes for the X4 sweep: 60, 15, 6, 3 and 1 cluster(s).
DEFAULT_SWEEP_CLUSTERS_MB: Tuple[float, ...] = (25.0, 100.0, 250.0, 500.0, 1_500.0)


def run_better_source_scenario(
    cluster_mb: float,
    decide_wrapper: Optional[Callable] = None,
    poison_at_s: float = 1_200.0,
) -> SessionRecord:
    """One deterministic session through the better-source-appears story.

    Args:
        cluster_mb: Striping cluster size (= switching granularity).
        decide_wrapper: Optional switching baseline (e.g. ``NeverSwitch``).
        poison_at_s: When, after the request, the U2-U3-U4 route congests
            and the Athens copy appears.

    Returns:
        The finished session record.
    """
    sim = Simulator(start_time=8 * 3600.0)
    topology = build_grnet_topology()
    apply_traffic_sample(topology, "8am")
    service = VoDService(
        sim,
        topology,
        ServiceConfig(
            cluster_mb=cluster_mb,
            disk_count=4,
            disk_capacity_mb=5_000.0,
            use_reported_stats=False,
        ),
    )
    service.decide_wrapper = decide_wrapper
    service.seed_title("U4", SWITCHING_TITLE)
    _, session, _ = service.request_by_home("U2", SWITCHING_TITLE.title_id)

    def poison_and_seed():
        # Congest both hops of the U2,U3,U4 route almost completely...
        topology.link_named("Patra-Ioannina").set_background_mbps(1.95)
        topology.link_named("Thessaloniki-Ioannina").set_background_mbps(1.95)
        # ...and make a pristine copy available one idle 2 Mb hop away.
        service.servers["U1"].seed_title(SWITCHING_TITLE)

    sim.schedule(poison_at_s, poison_and_seed)
    sim.run(until=sim.now + 14 * 24 * 3600.0)
    return session.record


def resolve_jobs(jobs: Optional[int]) -> int:
    """Effective worker count: None means one per CPU, floor 1."""
    if jobs is None:
        return os.cpu_count() or 1
    return max(int(jobs), 1)


def better_source_sweep(
    cluster_sizes_mb: Sequence[float] = DEFAULT_SWEEP_CLUSTERS_MB,
    jobs: int = 1,
) -> Iterator[Tuple[float, SessionRecord]]:
    """Run the scenario once per cluster size, yielding (c, record).

    Args:
        cluster_sizes_mb: The sweep points.
        jobs: Worker processes; ``1`` (the default) runs serially in this
            process, ``None`` uses one worker per CPU.  Every sweep point
            is an isolated deterministic simulation, so the yielded
            (cluster, record) pairs are identical at any job count —
            order included.
    """
    sizes = [float(c) for c in cluster_sizes_mb]
    workers = min(resolve_jobs(jobs), max(len(sizes), 1))
    if workers <= 1:
        for cluster_mb in sizes:
            yield cluster_mb, run_better_source_scenario(cluster_mb)
        return
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # Executor.map preserves input order regardless of completion order.
        for cluster_mb, record in zip(sizes, pool.map(run_better_source_scenario, sizes)):
            yield cluster_mb, record
