"""Placement-policy comparison experiment (paper-style tables).

Runs the same seeded regional workload on GRNET under each placement
policy — whole-title DMA (paper Figure 2), prefix replication
(arXiv 1003.4049) and popularity-weighted partial caching — and compares
them on the axes the placement literature argues about:

* **hit rate** — placement passes finding the full title (or a usable
  prefix) already local;
* **startup latency** — mean / p95 first-cluster delay, the metric
  prefix caching exists to shrink;
* **network load** — megabyte-hops transported, the metric whole-title
  caching optimises.

:func:`run_placement_experiment` also hosts the PR's equivalence gates
(``check=True``): the default DMA policy must replay byte-identically
run-to-run *and* byte-identically against the deprecated
``DiskManipulationAlgorithm`` shim.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.service import ServiceConfig
from repro.core.session import SessionRecord
from repro.errors import ReproError
from repro.experiments.harness import ServiceExperiment, SweepResult, run_service_experiment
from repro.experiments.report import render_table
from repro.metrics.collectors import SessionMetrics
from repro.placement.base import PLACEMENT_KINDS, PlacementConfig
from repro.storage.video import VideoTitle
from repro.workload.scenarios import WorkloadScenario, regional_scenario

#: Simulated clock at experiment start (the GRNET Table 2 morning).
START_TIME_S = 8 * 3600.0


def session_fingerprint(records: Sequence[SessionRecord]) -> str:
    """SHA-256 over a canonical JSON dump of session records.

    Two runs are byte-identical in the replay-gate sense exactly when
    their fingerprints match: every cluster's source, path, timing, size
    and QoS flag plus every session's aggregate metrics are folded in.
    """
    canonical = [
        {
            "client": r.request.client_id,
            "home": r.request.home_uid,
            "title": r.request.title_id,
            "submitted": r.request.submitted_at,
            "status": r.request.status.value,
            "reason": r.request.failure_reason,
            "startup_s": r.startup_delay_s,
            "stall_s": r.stall_s,
            "switches": r.switch_count,
            "qos_violations": r.qos_violation_count,
            "completed_at": r.completed_at,
            "retries": r.retry_count,
            "admission_wait_s": r.admission_wait_s,
            "clusters": [
                [
                    c.index,
                    c.server_uid,
                    list(c.path_nodes),
                    c.rate_mbps,
                    c.start,
                    c.end,
                    c.size_mb,
                    c.switched,
                    c.qos_violated,
                ]
                for c in r.clusters
            ],
        }
        for r in records
    ]
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PlacementOutcome:
    """One policy's run, reduced to the comparison quantities.

    Attributes:
        kind: The placement kind that ran.
        metrics: Aggregate session metrics of the run.
        passes: Placement passes executed across all servers.
        hits: Passes finding the full title already resident.
        prefix_hits: Passes finding a prefix segment (not the full title)
            already resident.
        stores: Whole-title stores (immediate + replacement).
        prefix_stores: Prefix/partial segment stores.
        evictions: Titles/segments evicted.
        lost_victims: Eviction passes that deleted victim(s) without
            storing the newcomer.
        fingerprint: Session-record fingerprint of the run.
    """

    kind: str
    metrics: SessionMetrics
    passes: int
    hits: int
    prefix_hits: int
    stores: int
    prefix_stores: int
    evictions: int
    lost_victims: int
    fingerprint: str

    @property
    def hit_rate(self) -> float:
        """Full-title hits over placement passes."""
        return self.hits / self.passes if self.passes else 0.0

    @property
    def any_hit_rate(self) -> float:
        """Full *or* prefix hits over placement passes."""
        return (self.hits + self.prefix_hits) / self.passes if self.passes else 0.0


@dataclass(frozen=True)
class PlacementComparison:
    """The full comparison: one outcome per policy plus gate verdicts.

    Attributes:
        outcomes: Per-policy outcomes, in :data:`PLACEMENT_KINDS` order.
        deterministic: DMA rerun fingerprint matched (None = not checked).
        shim_equivalent: DMA-vs-legacy-shim fingerprints matched
            (None = not checked).
    """

    outcomes: Tuple[PlacementOutcome, ...]
    deterministic: Optional[bool] = None
    shim_equivalent: Optional[bool] = None

    def outcome_for(self, kind: str) -> PlacementOutcome:
        """The outcome of one policy kind.

        Raises:
            ReproError: If that kind was not part of the comparison.
        """
        for outcome in self.outcomes:
            if outcome.kind == kind:
                return outcome
        raise ReproError(f"no outcome for placement kind {kind!r}")

    @property
    def gates_passed(self) -> bool:
        """True when every executed gate held (vacuously true unchecked)."""
        return self.deterministic is not False and self.shim_equivalent is not False


def _placement_config(
    kind: str,
    prefix_minutes: float,
    partial_floor: float,
    hot_points: int,
) -> PlacementConfig:
    if kind == "prefix":
        return PlacementConfig(
            kind="prefix", prefix_minutes=prefix_minutes, hot_points=hot_points
        )
    if kind == "partial":
        return PlacementConfig(kind="partial", partial_floor=partial_floor)
    return PlacementConfig(kind="dma")


def _policy_tallies(result: SweepResult) -> Dict[str, int]:
    """Sum the per-server placement-policy counters of a finished run."""
    tallies = {
        "passes": 0,
        "hits": 0,
        "prefix_hits": 0,
        "stores": 0,
        "prefix_stores": 0,
        "evictions": 0,
        "lost_victims": 0,
    }
    for server in result.service.servers.values():
        policy = server.policy
        tallies["passes"] += policy.pass_count
        tallies["hits"] += policy.hit_count
        tallies["prefix_hits"] += policy.prefix_hit_count
        tallies["evictions"] += policy.eviction_count
        tallies["lost_victims"] += policy.lost_victims
        counts = policy.action_counts
        tallies["stores"] += counts.get("stored", 0) + counts.get("replaced", 0)
        tallies["prefix_stores"] += counts.get("prefix_stored", 0)
    return tallies


def _run_one(
    scenario: WorkloadScenario,
    config: ServiceConfig,
    kind: str,
    cache: str = "dma",
) -> SweepResult:
    experiment = ServiceExperiment(
        name=f"placement:{kind}" if cache == "dma" else f"placement:{cache}",
        scenario=scenario,
        config=config,
        cache=cache,
        start_time=START_TIME_S,
    )
    return run_service_experiment(experiment)


def run_placement_experiment(
    requests_per_node: int = 12,
    catalog_size: int = 12,
    seed: int = 23,
    title_mb: float = 400.0,
    title_minutes: float = 60.0,
    cluster_mb: float = 50.0,
    disk_count: int = 2,
    disk_capacity_mb: float = 500.0,
    prefix_minutes: float = 10.0,
    partial_floor: float = 0.1,
    hot_points: int = 2,
    kinds: Sequence[str] = PLACEMENT_KINDS,
    check: bool = False,
) -> PlacementComparison:
    """Run the placement-policy comparison on GRNET.

    Args:
        requests_per_node: Mean requests per GRNET node over the workload.
        catalog_size: Titles in the shared catalog.
        seed: Workload seed (deterministic schedule).
        title_mb / title_minutes: Uniform title size and duration.
        cluster_mb / disk_count / disk_capacity_mb: Server storage shape;
            the defaults fit ~2.5 whole titles per server, so placement
            pressure is real.
        prefix_minutes / partial_floor / hot_points: Policy knobs.
        kinds: Placement kinds to compare (subset of
            :data:`PLACEMENT_KINDS`).
        check: Also run the equivalence gates: the DMA run must replay
            byte-identically, and must match the deprecated
            ``DiskManipulationAlgorithm`` shim byte-for-byte.

    Raises:
        ReproError: For an unknown placement kind, or when ``check`` is
            requested without the ``dma`` kind.
    """
    for kind in kinds:
        if kind not in PLACEMENT_KINDS:
            raise ReproError(
                f"unknown placement kind {kind!r}; expected one of {PLACEMENT_KINDS}"
            )
    if check and "dma" not in kinds:
        raise ReproError("equivalence gates need the 'dma' kind in the comparison")

    from repro.network.grnet import build_grnet_topology

    nodes = build_grnet_topology().node_uids()
    catalog = [
        VideoTitle(
            f"title-{i:03d}",
            size_mb=title_mb,
            duration_s=title_minutes * 60.0,
        )
        for i in range(catalog_size)
    ]
    scenario = regional_scenario(
        nodes,
        requests_per_node=requests_per_node,
        seed=seed,
        catalog=catalog,
    )

    def config_for(kind: str) -> ServiceConfig:
        return ServiceConfig(
            cluster_mb=cluster_mb,
            disk_count=disk_count,
            disk_capacity_mb=disk_capacity_mb,
            max_streams=64,
            use_reported_stats=False,
            placement=_placement_config(
                kind, prefix_minutes, partial_floor, hot_points
            ),
        )

    outcomes: List[PlacementOutcome] = []
    fingerprints: Dict[str, str] = {}
    for kind in PLACEMENT_KINDS:
        if kind not in kinds:
            continue
        result = _run_one(scenario, config_for(kind), kind)
        tallies = _policy_tallies(result)
        fingerprint = session_fingerprint(result.service.sessions)
        fingerprints[kind] = fingerprint
        outcomes.append(
            PlacementOutcome(
                kind=kind,
                metrics=result.metrics,
                fingerprint=fingerprint,
                **tallies,
            )
        )

    deterministic: Optional[bool] = None
    shim_equivalent: Optional[bool] = None
    if check:
        rerun = _run_one(scenario, config_for("dma"), "dma")
        deterministic = (
            session_fingerprint(rerun.service.sessions) == fingerprints["dma"]
        )
        with warnings.catch_warnings():
            # The whole point of this leg is constructing the deprecated
            # shim; its warning is expected, not noise.
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = _run_one(scenario, config_for("dma"), "dma", cache="dma-legacy")
        shim_equivalent = (
            session_fingerprint(legacy.service.sessions) == fingerprints["dma"]
        )

    return PlacementComparison(
        outcomes=tuple(outcomes),
        deterministic=deterministic,
        shim_equivalent=shim_equivalent,
    )


def render_placement_comparison(comparison: PlacementComparison) -> str:
    """The paper-style comparison table plus gate verdict lines."""
    headers = [
        "Placement",
        "Hit rate",
        "Hit+prefix",
        "Startup mean s",
        "Startup p95 s",
        "MB-hops",
        "Stores",
        "Prefix stores",
        "Evictions",
        "Completed",
    ]
    rows = [
        [
            outcome.kind,
            f"{outcome.hit_rate:.1%}",
            f"{outcome.any_hit_rate:.1%}",
            f"{outcome.metrics.mean_startup_s:.1f}",
            f"{outcome.metrics.p95_startup_s:.1f}",
            f"{outcome.metrics.megabyte_hops:.0f}",
            str(outcome.stores),
            str(outcome.prefix_stores),
            str(outcome.evictions),
            f"{outcome.metrics.completed_count}/{outcome.metrics.session_count}",
        ]
        for outcome in comparison.outcomes
    ]
    lines = [
        render_table(
            headers, rows, title="Placement-policy comparison (GRNET, X5)"
        )
    ]
    if comparison.deterministic is not None:
        lines.append(
            "replay determinism (dma rerun): "
            + ("PASS" if comparison.deterministic else "FAIL")
        )
    if comparison.shim_equivalent is not None:
        lines.append(
            "dma-policy equivalence (legacy shim): "
            + ("PASS" if comparison.shim_equivalent else "FAIL")
        )
    return "\n".join(lines)
