"""Service-level experiment runner.

A :class:`ServiceExperiment` bundles everything one comparison run needs —
topology, workload scenario, selection policy, cache policy, switching
cadence, traffic shaping — and :func:`run_service_experiment` executes it
end to end on the discrete-event engine, returning aggregate
:class:`~repro.metrics.collectors.SessionMetrics`.

The policy knobs are strings so benchmark parameter sweeps stay declarative:

=============  =====================================================
``selection``  ``"vra"`` | ``"random"`` | ``"minhop"`` | ``"static"``
               | ``"origin:<uid>"``
``cache``      ``"dma"`` | ``"dma-greedy"`` (evict_until_fits) |
               ``"dma-legacy"`` (deprecated shim, dma.* telemetry) |
               ``"nocache"`` | ``"lru"`` | ``"fullrep"``
``switching``  ``"always"`` | ``"never"`` | ``"period:<n>"``
=============  =====================================================
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.baselines.caching import (
    FullReplicationPolicy,
    LruCachePolicy,
    NoCachePolicy,
)
from repro.baselines.selection import (
    HomeOnlySelection,
    MinHopSelection,
    RandomSelection,
    StaticNearestSelection,
)
from repro.baselines.switching import NeverSwitch, PeriodicRecompute
from repro.core.service import ServiceConfig, VoDService
from repro.errors import ReproError, ServiceError
from repro.metrics.collectors import SessionMetrics, summarize_sessions
from repro.network.grnet import build_grnet_topology
from repro.network.topology import Topology
from repro.placement.whole_title import WholeTitleDma
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.workload.scenarios import WorkloadScenario
from repro.workload.traces import Table2Replayer


@dataclass
class ServiceExperiment:
    """One end-to-end experiment definition.

    Attributes:
        name: Label for reports.
        scenario: The request schedule and catalog.
        config: Service deployment knobs.
        selection: Server-selection policy key (see module docstring).
        cache: Cache policy key.
        switching: Mid-stream switching cadence key.
        topology_factory: Builds the network (defaults to GRNET).
        seed_origin_uids: Servers receiving the initial single copy of each
            title, round-robin; defaults to every node.
        replay_table2: Drive background traffic through the paper's Table 2
            day while the experiment runs.
        run_until: Simulated end time; defaults to the scenario horizon
            plus an hour of drain time.
        seed: Seed for any randomised policy (e.g. random selection).
        start_time: Simulated clock at experiment start (e.g. 8am for
            Table 2 replays).
        tracer: Optional structured event trace handed to the service
            (the obs CLI passes an enabled one so spans land somewhere).
        service_hook: Optional callable invoked with the freshly built
            service before it starts — the CLI uses it to attach a
            streaming telemetry sink; fault/chaos tooling can use it to
            attach injectors.
    """

    name: str
    scenario: WorkloadScenario
    config: ServiceConfig = field(default_factory=ServiceConfig)
    selection: str = "vra"
    cache: str = "dma"
    switching: str = "always"
    topology_factory: Callable[[], Topology] = build_grnet_topology
    seed_origin_uids: Optional[Sequence[str]] = None
    replay_table2: bool = False
    run_until: Optional[float] = None
    seed: int = 0
    start_time: float = 0.0
    tracer: Optional[Tracer] = None
    service_hook: Optional[Callable[[VoDService], None]] = None


@dataclass
class SweepResult:
    """Outcome of one experiment run.

    Attributes:
        experiment: The definition that ran.
        metrics: Aggregate session metrics.
        service: The service instance (for deeper inspection).
    """

    experiment: ServiceExperiment
    metrics: SessionMetrics
    service: VoDService


def _apply_selection(service: VoDService, key: str, seed: int) -> None:
    if key == "vra":
        return
    if key == "random":
        service.vra = RandomSelection(service.topology, rng=random.Random(seed))
    elif key == "minhop":
        service.vra = MinHopSelection(service.topology)
    elif key == "static":
        service.vra = StaticNearestSelection(service.topology)
    elif key.startswith("origin:"):
        service.vra = HomeOnlySelection(service.topology, origin_uid=key.split(":", 1)[1])
    else:
        raise ReproError(f"unknown selection policy {key!r}")


def _legacy_dma_factory(array, on_store, on_evict):
    """The deprecated DiskManipulationAlgorithm shim — used by the
    equivalence gate to prove shim-vs-policy byte-identity (and to keep
    exercising the dma.* telemetry aliases)."""
    from repro.core.dma import DiskManipulationAlgorithm

    return DiskManipulationAlgorithm(array, on_store=on_store, on_evict=on_evict)


def _apply_cache(service: VoDService, key: str) -> None:
    if key == "dma":
        return
    factories = {
        "dma-greedy": lambda array, on_store, on_evict: WholeTitleDma(
            array, on_store=on_store, on_evict=on_evict, evict_until_fits=True
        ),
        "dma-legacy": _legacy_dma_factory,
        "nocache": NoCachePolicy,
        "lru": LruCachePolicy,
        "fullrep": FullReplicationPolicy,
    }
    if key not in factories:
        raise ReproError(f"unknown cache policy {key!r}")
    for server in service.servers.values():
        server.set_cache_policy(factories[key])


def _apply_switching(service: VoDService, key: str) -> None:
    if key == "always":
        return
    if key == "never":
        service.decide_wrapper = NeverSwitch
    elif key.startswith("period:"):
        period = int(key.split(":", 1)[1])
        service.decide_wrapper = lambda decide: PeriodicRecompute(decide, period)
    else:
        raise ReproError(f"unknown switching policy {key!r}")


def build_service(experiment: ServiceExperiment) -> VoDService:
    """Construct and seed the service for an experiment (no requests yet)."""
    sim = Simulator(start_time=experiment.start_time)
    topology = experiment.topology_factory()
    service = VoDService(sim, topology, experiment.config, tracer=experiment.tracer)
    _apply_selection(service, experiment.selection, experiment.seed)
    _apply_cache(service, experiment.cache)
    _apply_switching(service, experiment.switching)

    origins = list(
        experiment.seed_origin_uids
        if experiment.seed_origin_uids is not None
        else topology.node_uids()
    )
    if not origins:
        raise ServiceError("experiment needs at least one seed origin server")
    for index, title in enumerate(experiment.scenario.catalog):
        service.seed_title(origins[index % len(origins)], title)
    return service


def run_service_experiment(experiment: ServiceExperiment) -> SweepResult:
    """Run one experiment end to end and summarise it."""
    service = build_service(experiment)
    sim = service.sim
    if experiment.service_hook is not None:
        experiment.service_hook(service)

    if experiment.replay_table2:
        Table2Replayer(sim, service.topology).start()
    service.start()

    sim.schedule_many(
        (
            (
                experiment.start_time + event.time_s,
                lambda e=event: service.request_by_home(e.home_uid, e.title_id, e.client_id),
                (),
                f"request:{event.client_id}",
            )
            for event in experiment.scenario.events
        ),
        absolute=True,
    )

    horizon = experiment.run_until
    if horizon is None:
        horizon = experiment.start_time + experiment.scenario.duration_s + 3 * 3600.0
    sim.run(until=horizon)
    # Stop periodic tasks implicitly by abandoning the simulator; sessions
    # that outlive the horizon are reported as incomplete by the metrics.
    return SweepResult(
        experiment=experiment,
        metrics=summarize_sessions(service.sessions),
        service=service,
    )


def _experiment_metrics(experiment: ServiceExperiment) -> SessionMetrics:
    """Worker entry point: run one experiment, ship back only the metrics.

    A :class:`SweepResult` holds the live service (closures, simulator),
    which cannot cross a process boundary; the aggregate metrics can.
    """
    return run_service_experiment(experiment).metrics


def run_service_experiments(
    experiments: Sequence[ServiceExperiment],
    jobs: int = 1,
) -> List[SessionMetrics]:
    """Run a batch of experiments, optionally across worker processes.

    Args:
        experiments: The definitions to run.  For ``jobs > 1`` each must
            be picklable: a module-level ``topology_factory``, no tracer.
        jobs: Worker processes; ``1`` runs serially in this process,
            ``None`` uses one per CPU.

    Returns:
        One :class:`SessionMetrics` per experiment, in input order — the
        same values at any job count, since every experiment is an
        isolated deterministic simulation.  Callers needing the live
        service must use :func:`run_service_experiment` serially.
    """
    from repro.experiments.sweeps import resolve_jobs

    batch = list(experiments)
    workers = min(resolve_jobs(jobs), max(len(batch), 1))
    if workers <= 1:
        return [run_service_experiment(e).metrics for e in batch]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_experiment_metrics, batch))
