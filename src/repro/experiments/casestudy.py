"""The paper's GRNET case study: Tables 2-5 and Experiments A-D.

Everything here recomputes the paper's evaluation from the embedded Table 2
traffic samples:

* :func:`compute_table2_utilization_percent` — eq. (5) utilisation (Table 2's
  percentage rows);
* :func:`compute_table3_lvn` — equations (1)-(4) over each sampling instant
  (Table 3);
* :func:`run_experiment` — Experiments A-D, each yielding the full VRA
  decision with a paper-style Dijkstra step trace (Tables 4-5);
* :func:`table2_deltas` / :func:`table3_deltas` — cell-by-cell comparison
  against the values printed in the paper.

Paper errata reproduced deliberately (DESIGN.md §5): Experiment A's printed
Table 4 misses the relaxation of U4 through U3, so the paper picks Xanthi
(U5) while a correct Dijkstra over the paper's own weights picks
Thessaloniki (U4).  ``PAPER_EXPERIMENTS`` records both the printed and the
corrected expectations, and the benchmark prints the delta.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.lvn import DEFAULT_NORMALIZATION_CONSTANT, weight_table
from repro.core.vra import VirtualRoutingAlgorithm, VraDecision
from repro.network import grnet
from repro.network.topology import Topology


@dataclass(frozen=True)
class ExperimentSpec:
    """One of the paper's four case-study experiments.

    Attributes:
        exp_id: "A".."D".
        time_label: Table 2 sampling instant the experiment runs at.
        home_uid: The client's home server.
        holder_uids: Servers that "can only ... provide" the title.
        description: The paper's scenario sentence.
    """

    exp_id: str
    time_label: str
    home_uid: str
    holder_uids: Tuple[str, ...]
    description: str


@dataclass(frozen=True)
class PaperExpectation:
    """What the paper reports for one experiment.

    Attributes:
        printed_chosen: Server the paper says wins.
        printed_costs: Candidate -> total cost as printed.
        printed_paths: Candidate -> node path as printed (home-first).
        corrected_chosen: Winner under a correct Dijkstra on the paper's
            own weights (differs from printed only for Experiment A).
        erratum: Human-readable note when printed != corrected.
    """

    printed_chosen: str
    printed_costs: Dict[str, float]
    printed_paths: Dict[str, Tuple[str, ...]]
    corrected_chosen: str
    erratum: str = ""


@dataclass
class ExperimentOutcome:
    """A recomputed experiment.

    Attributes:
        spec: The experiment definition.
        decision: Full VRA decision (trace included).
        candidate_costs: Candidate server -> recomputed least cost.
        candidate_paths: Candidate server -> recomputed least-cost path.
        chosen_uid: Recomputed winner.
        expectation: The paper's printed/corrected values for diffing.
    """

    spec: ExperimentSpec
    decision: VraDecision
    candidate_costs: Dict[str, float]
    candidate_paths: Dict[str, Tuple[str, ...]]
    chosen_uid: str
    expectation: PaperExpectation

    @property
    def matches_corrected(self) -> bool:
        """True when the recomputed winner equals the corrected expectation."""
        return self.chosen_uid == self.expectation.corrected_chosen

    @property
    def matches_printed(self) -> bool:
        """True when the recomputed winner equals the printed expectation."""
        return self.chosen_uid == self.expectation.printed_chosen


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "A": ExperimentSpec(
        exp_id="A",
        time_label="8am",
        home_uid="U2",
        holder_uids=("U4", "U5"),
        description=(
            "8:00 am: a client at Patra (U2) requests a title held only by "
            "Thessaloniki (U4) and Xanthi (U5)"
        ),
    ),
    "B": ExperimentSpec(
        exp_id="B",
        time_label="10am",
        home_uid="U2",
        holder_uids=("U4", "U5"),
        description=(
            "10:00 am: the same request — client at Patra (U2), title held "
            "by Thessaloniki (U4) and Xanthi (U5)"
        ),
    ),
    "C": ExperimentSpec(
        exp_id="C",
        time_label="4pm",
        home_uid="U1",
        holder_uids=("U3", "U4", "U5"),
        description=(
            "4:00 pm: a client at Athens (U1) requests a title held only by "
            "Thessaloniki (U4), Xanthi (U5) and Ioannina (U3)"
        ),
    ),
    "D": ExperimentSpec(
        exp_id="D",
        time_label="6pm",
        home_uid="U1",
        holder_uids=("U3", "U4", "U5"),
        description=(
            "6:00 pm: the same request — client at Athens (U1), title held "
            "by Thessaloniki (U4), Xanthi (U5) and Ioannina (U3)"
        ),
    ),
}

PAPER_EXPERIMENTS: Dict[str, PaperExpectation] = {
    "A": PaperExpectation(
        printed_chosen="U5",
        printed_costs={"U4": 0.365, "U5": 0.315},
        printed_paths={
            "U4": ("U2", "U1", "U4"),
            "U5": ("U2", "U1", "U6", "U5"),
        },
        corrected_chosen="U4",
        erratum=(
            "Table 4 misses the relaxation of U4 through U3: with the "
            "paper's own 8am weights the best U2->U4 path is U2,U3,U4 at "
            "~0.218 (< 0.316 to U5), so a correct Dijkstra downloads from "
            "Thessaloniki, not Xanthi."
        ),
    ),
    "B": PaperExpectation(
        printed_chosen="U4",
        printed_costs={"U4": 1.007, "U5": 1.308},
        printed_paths={
            "U4": ("U2", "U3", "U4"),
            "U5": ("U2", "U1", "U6", "U5"),
        },
        corrected_chosen="U4",
    ),
    "C": PaperExpectation(
        printed_chosen="U3",
        printed_costs={"U4": 1.5433, "U5": 1.274, "U3": 1.222},
        printed_paths={
            "U4": ("U1", "U4"),
            "U5": ("U1", "U6", "U5"),
            "U3": ("U1", "U2", "U3"),
        },
        corrected_chosen="U3",
    ),
    "D": PaperExpectation(
        printed_chosen="U3",
        printed_costs={"U4": 1.4824, "U5": 1.3574, "U3": 1.236},
        printed_paths={
            "U4": ("U1", "U4"),
            "U5": ("U1", "U6", "U5"),
            "U3": ("U1", "U2", "U3"),
        },
        corrected_chosen="U3",
    ),
}


def topology_at(time_label: str) -> Topology:
    """A fresh GRNET topology carrying one Table 2 sample as background."""
    topology = grnet.build_grnet_topology()
    grnet.apply_traffic_sample(topology, time_label)
    return topology


def compute_table2_utilization_percent() -> Dict[str, Dict[str, float]]:
    """Recompute Table 2's utilisation rows via eq. (5), in percent."""
    table: Dict[str, Dict[str, float]] = {}
    for link_name, samples in grnet.TABLE2_TRAFFIC_MBPS.items():
        capacity = next(c for n, _, c in grnet.GRNET_LINKS if n == link_name)
        table[link_name] = {
            time_label: 100.0 * used / capacity for time_label, used in samples.items()
        }
    return table


def compute_table3_lvn(
    normalization_constant: float = DEFAULT_NORMALIZATION_CONSTANT,
) -> Dict[str, Dict[str, float]]:
    """Recompute Table 3: the LVN of every link at every sampling instant."""
    table: Dict[str, Dict[str, float]] = {name: {} for name, _, _ in grnet.GRNET_LINKS}
    for time_label in grnet.SAMPLE_TIMES:
        topology = topology_at(time_label)
        weights = weight_table(topology, normalization_constant=normalization_constant)
        for link_name, lvn in weights.items():
            table[link_name][time_label] = lvn
    return table


@dataclass(frozen=True)
class CellDelta:
    """One cell's computed-vs-printed comparison."""

    link_name: str
    time_label: str
    computed: float
    printed: float

    @property
    def delta(self) -> float:
        """computed - printed."""
        return self.computed - self.printed


def table2_deltas() -> List[CellDelta]:
    """Computed-vs-printed comparison for every Table 2 utilisation cell."""
    computed = compute_table2_utilization_percent()
    deltas: List[CellDelta] = []
    for link_name, row in grnet.PAPER_TABLE2_UTILIZATION_PERCENT.items():
        for time_label, printed in row.items():
            deltas.append(
                CellDelta(link_name, time_label, computed[link_name][time_label], printed)
            )
    return deltas


def table3_deltas() -> List[CellDelta]:
    """Computed-vs-printed comparison for every Table 3 LVN cell.

    The printed table carries inconsistent rounding (DESIGN.md §5 erratum
    2); all deltas stay below ~0.012, which the benchmark asserts.
    """
    computed = compute_table3_lvn()
    deltas: List[CellDelta] = []
    for link_name, row in grnet.PAPER_TABLE3_LVN.items():
        for time_label, printed in row.items():
            deltas.append(
                CellDelta(link_name, time_label, computed[link_name][time_label], printed)
            )
    return deltas


def run_experiment(exp_id: str, trace: bool = True) -> ExperimentOutcome:
    """Recompute one of Experiments A-D.

    Args:
        exp_id: "A", "B", "C" or "D".
        trace: Record the paper-style Dijkstra step table.

    Raises:
        KeyError: For an unknown experiment id.
    """
    spec = EXPERIMENTS[exp_id]
    topology = topology_at(spec.time_label)
    vra = VirtualRoutingAlgorithm(topology, trace=trace)
    decision = vra.decide(spec.home_uid, title_id=f"case-study-{exp_id}", holders=list(spec.holder_uids))
    candidate_costs = {uid: path.cost for uid, path in decision.candidate_paths.items()}
    candidate_paths = {uid: path.nodes for uid, path in decision.candidate_paths.items()}
    return ExperimentOutcome(
        spec=spec,
        decision=decision,
        candidate_costs=candidate_costs,
        candidate_paths=candidate_paths,
        chosen_uid=decision.chosen_uid,
        expectation=PAPER_EXPERIMENTS[exp_id],
    )


def run_all_experiments(trace: bool = True) -> Dict[str, ExperimentOutcome]:
    """All four experiments, keyed by id."""
    return {exp_id: run_experiment(exp_id, trace=trace) for exp_id in EXPERIMENTS}
