"""ASCII rendering of the paper's tables.

The benchmarks print these next to the paper's values so a reader can eyeball
the reproduction without digging into assertion code.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.experiments.casestudy import (
    CellDelta,
    ExperimentOutcome,
    compute_table2_utilization_percent,
    compute_table3_lvn,
)
from repro.core.admission_queue import AdmissionQueueStats
from repro.metrics.timeseries import TimeSeries
from repro.network import grnet
from repro.network.routing.cache import DecisionCacheStats, RoutingCacheStats
from repro.network.routing.dijkstra import DijkstraStep

#: Sparkline glyphs, blank through full block (9 levels).
_SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Fixed-width ASCII table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    rule = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append(rule)
    lines.extend(fmt(list(row)) for row in rows)
    return "\n".join(lines)


def render_table2(deltas: Optional[List[CellDelta]] = None) -> str:
    """Table 2 reproduction: per-link utilisation percent vs the paper."""
    computed = compute_table2_utilization_percent()
    paper = grnet.PAPER_TABLE2_UTILIZATION_PERCENT
    headers = ["Link"] + [
        f"{t} (ours/paper %)" for t in grnet.SAMPLE_TIMES
    ]
    rows = []
    for link_name, _, capacity in grnet.GRNET_LINKS:
        row = [f"{link_name} ({capacity:g}Mb)"]
        for t in grnet.SAMPLE_TIMES:
            row.append(f"{computed[link_name][t]:.4g} / {paper[link_name][t]:.4g}")
        rows.append(row)
    return render_table(headers, rows, title="Table 2 — link utilisation (eq. 5)")


def render_table3() -> str:
    """Table 3 reproduction: per-link LVN vs the paper."""
    computed = compute_table3_lvn()
    paper = grnet.PAPER_TABLE3_LVN
    headers = ["Link"] + [f"{t} (ours/paper)" for t in grnet.SAMPLE_TIMES]
    rows = []
    for link_name, _, _ in grnet.GRNET_LINKS:
        row = [link_name]
        for t in grnet.SAMPLE_TIMES:
            row.append(f"{computed[link_name][t]:.4f} / {paper[link_name][t]:.4f}")
        rows.append(row)
    return render_table(headers, rows, title="Table 3 — Link Validation Numbers (eqs. 1-4)")


def render_routing_cache(stats: Optional[RoutingCacheStats], title: str = "") -> str:
    """Routing-cache counter table for experiment/benchmark reports.

    Args:
        stats: The VRA's cache counters; None renders a "cache off" stub
            (baseline selection policies replace the VRA entirely).
        title: Table caption; defaults to a generic one.
    """
    caption = title or "Routing cache — epoch-versioned LVN/Dijkstra reuse"
    if stats is None:
        return f"{caption}\n(routing cache disabled)"
    headers = ["Layer", "Hits", "Misses", "Hit rate"]
    weight_total = stats.weight_hits + stats.weight_misses
    tree_total = stats.tree_hits + stats.tree_misses
    rows = [
        [
            "LVN weight table",
            str(stats.weight_hits),
            str(stats.weight_misses),
            f"{stats.weight_hits / weight_total:.2%}" if weight_total else "-",
        ],
        [
            "Dijkstra trees",
            str(stats.tree_hits),
            str(stats.tree_misses),
            f"{stats.tree_hits / tree_total:.2%}" if tree_total else "-",
        ],
        [
            "Total",
            str(stats.hits),
            str(stats.misses),
            f"{stats.hit_rate:.2%}" if (stats.hits + stats.misses) else "-",
        ],
    ]
    table = render_table(headers, rows, title=caption)
    return (
        f"{table}\n"
        f"invalidations (epoch changes): {stats.invalidations} "
        f"({stats.full_invalidations} full flush(es), "
        f"{stats.partial_invalidations} delta patch(es) over "
        f"{stats.dirty_links} dirty link(s)); "
        f"trees repaired in place: {stats.trees_repaired}, "
        f"rerooted: {stats.trees_rerooted}; "
        f"LRU evictions: {stats.evictions}"
    )


def render_decision_cache(stats: Optional[DecisionCacheStats], title: str = "") -> str:
    """Decision-cache counter table for experiment/benchmark reports.

    Args:
        stats: The VRA's whole-decision memo counters; None renders a
            "cache off" stub (the memo rides on the routing cache, so it
            is also off whenever the routing cache is).
        title: Table caption; defaults to a generic one.
    """
    caption = title or "Decision cache — whole-decision memoization"
    if stats is None:
        return f"{caption}\n(decision cache disabled)"
    total = stats.hits + stats.misses
    headers = ["Counter", "Value"]
    rows = [
        ["Hits", str(stats.hits)],
        ["Misses", str(stats.misses)],
        ["Hit rate", f"{stats.hit_rate:.2%}" if total else "-"],
        ["Full flushes", str(stats.full_invalidations)],
        ["Delta revalidations", str(stats.partial_invalidations)],
        ["Decisions flushed", str(stats.decisions_flushed)],
        ["Decisions dropped (tree hit by delta)", str(stats.decisions_dropped)],
        ["Decisions refreshed (weights rebased)", str(stats.decisions_refreshed)],
        ["LRU evictions", str(stats.evictions)],
    ]
    return render_table(headers, rows, title=caption)


def render_admission_queue(
    stats: Optional[AdmissionQueueStats], title: str = ""
) -> str:
    """Admission-queue counter table for experiment/benchmark reports.

    Args:
        stats: The load-leveling front-end's counters; None renders a
            "queue off" stub (legacy immediate admission).
        title: Table caption; defaults to a generic one.
    """
    caption = title or "Admission queue — load-leveling front-end"
    if stats is None:
        return f"{caption}\n(admission queue disabled)"
    headers = ["Counter", "Value"]
    rows = [
        ["Offered", str(stats.offered)],
        ["Admitted immediately", str(stats.immediate)],
        ["Delayed", str(stats.delayed)],
        ["Shed", str(stats.shed)],
        ["Shed rate", f"{stats.shed_rate:.2%}" if stats.offered else "-"],
        ["Mean wait", f"{stats.mean_wait_s:.1f} s"],
        ["Max wait", f"{stats.max_wait_s:.1f} s"],
        ["Queue high-water mark", str(stats.max_depth)],
        ["Drain cohorts", str(stats.batches)],
        ["Largest cohort", str(stats.max_batch)],
        ["Same-key coalesced", str(stats.coalesced)],
    ]
    return render_table(headers, rows, title=caption)


def render_phase_profile(registry, title: str = "") -> str:
    """Phase-profiler table (obs.phase.* / obs.memory.*) for reports.

    Args:
        registry: A :class:`~repro.obs.registry.MetricsRegistry`; renders
            a "profiling off" stub when no phase histograms recorded.
        title: Table caption; defaults to a generic one.
    """
    caption = title or "Phase profile — wall-clock time per subsystem"
    phases = [
        h for h in registry.histograms()
        if h.name.startswith("obs.phase.") and h.count > 0
    ]
    if not phases:
        return f"{caption}\n(phase profiling disabled)"
    headers = ["Phase", "Calls", "Total ms", "Mean ms", "p95 ms", "Max ms"]
    rows = []
    for histogram in sorted(phases, key=lambda h: -h.total):
        summary = histogram.summary()
        rows.append([
            histogram.name[len("obs.phase."):].replace("_ms", ""),
            f"{summary['count']:g}",
            f"{histogram.total:.2f}",
            f"{summary['mean']:.4f}",
            f"{summary['p95']:.4f}",
            f"{summary['max']:.4f}",
        ])
    for gauge in registry.gauges():
        if gauge.name.startswith("obs.memory."):
            rows.append([gauge.name, "-", "-", "-", "-", f"{gauge.value:g}"])
    return render_table(headers, rows, title=caption)


def render_dijkstra_trace(
    steps: Sequence[DijkstraStep],
    destinations: Sequence[str],
    title: str = "",
) -> str:
    """The paper's Tables 4-5 layout: one row per settled node.

    Args:
        steps: Trace rows from a traced Dijkstra run.
        destinations: Column order (the paper uses D3, D1, D4, D5, D6).
        title: Table caption.
    """
    headers = ["Step", "Nodes"]
    for uid in destinations:
        headers.extend([f"D{uid.lstrip('U')}", "Path"])
    rows = []
    for step in steps:
        row = [str(step.step), "{" + ",".join(step.settled) + "}"]
        for uid in destinations:
            row.append(step.distance_label(uid))
            row.append(step.path_label(uid))
        rows.append(row)
    return render_table(headers, rows, title=title)


def _sparkline(values: Sequence[float], width: int, peak: float) -> str:
    """Peak-preserving resample of ``values`` into ``width`` glyph buckets."""
    if not values:
        return " " * width
    top = len(_SPARK_BLOCKS) - 1
    cells: List[str] = []
    for bucket in range(width):
        lo = bucket * len(values) // width
        hi = max((bucket + 1) * len(values) // width, lo + 1)
        chunk = max(values[lo:hi])
        level = round(chunk / peak * top) if peak > 0.0 else 0
        cells.append(_SPARK_BLOCKS[min(max(level, 0), top)])
    return "".join(cells)


def render_timeline(
    rows: Sequence[Tuple[str, TimeSeries]],
    title: str = "",
    width: int = 60,
) -> str:
    """Labelled sparkline timelines of sampled gauge series.

    Built for the telemetry sampler's output: each row is a
    ``(label, series)`` pair (e.g. from
    :meth:`~repro.obs.sampler.TelemetrySampler.series_for`), rendered as
    one sparkline resampled to ``width`` buckets (peak-preserving, so a
    short utilisation spike never disappears).  Every row is scaled
    against its own peak, annotated on the right.

    Args:
        rows: ``(label, TimeSeries)`` pairs; empty series are skipped.
        title: Caption printed above the block.
        width: Sparkline width in characters.
    """
    kept = [(label, series) for label, series in rows if len(series) > 0]
    lines: List[str] = []
    if title:
        lines.append(title)
    if not kept:
        lines.append("(no samples)")
        return "\n".join(lines)
    label_width = max(len(label) for label, _ in kept)
    for label, series in kept:
        values = series.values()
        peak = max(values)
        spark = _sparkline(values, width, peak)
        lines.append(f"{label.ljust(label_width)} |{spark}| peak {peak:g}")
    first = min(series.samples()[0][0] for _, series in kept)
    last = max(series.samples()[-1][0] for _, series in kept)
    lines.append(
        f"{''.ljust(label_width)}  t = {first:g} .. {last:g} s "
        f"({len(kept)} series)"
    )
    return "\n".join(lines)


def render_experiment(outcome: ExperimentOutcome) -> str:
    """Full experiment report: scenario, trace, candidates, decision."""
    spec = outcome.spec
    expectation = outcome.expectation
    lines = [
        f"Experiment {spec.exp_id}: {spec.description}",
        "",
    ]
    if outcome.decision.dijkstra_result is not None and outcome.decision.dijkstra_result.steps:
        other_nodes = [
            uid
            for uid in ("U3", "U1", "U4", "U5", "U6", "U2")
            if uid != spec.home_uid
        ]
        lines.append(
            render_dijkstra_trace(
                outcome.decision.dijkstra_result.steps,
                destinations=other_nodes,
                title=f"Dijkstra step table from {spec.home_uid} at {spec.time_label}",
            )
        )
        lines.append("")
    headers = ["Candidate", "Best path (ours)", "Cost (ours)", "Path (paper)", "Cost (paper)"]
    rows = []
    for uid in sorted(outcome.candidate_costs):
        paper_path = expectation.printed_paths.get(uid)
        paper_cost = expectation.printed_costs.get(uid)
        rows.append(
            [
                uid,
                ",".join(outcome.candidate_paths[uid]),
                f"{outcome.candidate_costs[uid]:.4f}",
                ",".join(paper_path) if paper_path else "-",
                f"{paper_cost:.4f}" if paper_cost is not None else "-",
            ]
        )
    lines.append(render_table(headers, rows))
    lines.append("")
    lines.append(
        f"Decision (ours): download from {outcome.chosen_uid}; "
        f"paper printed {expectation.printed_chosen}; corrected expectation "
        f"{expectation.corrected_chosen}."
    )
    if expectation.erratum:
        lines.append(f"Erratum: {expectation.erratum}")
    return "\n".join(lines)
