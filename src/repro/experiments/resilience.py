"""Resilience experiment: a seeded fault storm against the full service.

Runs a regional workload on a topology while a
:class:`~repro.faults.injector.FaultInjector` replays a seeded
:class:`~repro.faults.schedule.FaultSchedule` — links flapping and
degrading, servers crashing, disks dying, the SNMP collectors going
dark — with session retry/backoff turned on, and reduces the run to a
:class:`ResilienceReport`.

Every figure in the report is a count or a simulated-time value, never a
wall-clock one, so the same seed and parameters reproduce the report
bit-for-bit (the replay test pins this).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.service import ServiceConfig, VoDService
from repro.experiments.harness import ServiceExperiment, build_service
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.metrics.collectors import SessionMetrics, summarize_sessions
from repro.metrics.stats import percentile
from repro.network.grnet import build_grnet_topology
from repro.network.topology import Topology
from repro.sim.trace import Tracer
from repro.workload.scenarios import regional_scenario


@dataclass(frozen=True)
class ResilienceReport:
    """Deterministic summary of one chaos run.

    Attributes:
        name: Experiment label.
        seed: Master seed (workload and fault schedule).
        duration_s: Fault/workload horizon in simulated seconds.
        session_count: Sessions submitted.
        completed_count: Sessions that delivered every cluster.
        failed_count: Sessions that finished without completing.
        availability: Completed over finished sessions (1.0 when nothing
            finished) — the chaos CLI's ``--min-availability`` floor.
        total_retries: Cluster-boundary retries taken across sessions.
        total_retry_wait_s: Simulated seconds spent backing off.
        recovered_sessions: Sessions that lost every source and then
            found one again via retry.
        faults_scheduled: Events in the schedule.
        faults_injected: Injections applied, by fault kind.
        faults_recovered: Fault windows closed, by kind.
        mean_fault_mttr_s: Mean injection-to-recovery time (s).
        snmp_blackout_skips: Collection rounds skipped by blackouts.
        metrics: The standard session aggregate for deeper comparison.
        failover_count: Mid-stream migrations taken by the supervisor
            (0 unless ``session_failover`` is on).
        failover_stall_s_total: Total stall seconds across failovers.
        failover_stall_s_p95: 95th-percentile stall per failover (s).
        sessions_failed_over: Distinct sessions that migrated at least
            once mid-stream.
        failover_failed_sessions: Sessions the supervisor let fail
            because no online full holder remained.
        preemptions: Transfer segments interrupted by a path fault.
        p95_stall_s: 95th-percentile total playback stall over completed
            sessions (s) — the chaos CLI's ``--max-p95-stall-s`` gate.
        breaker_trips: Open transitions by breaker kind (server/link).
        breaker_resets: Closed transitions by breaker kind.
        stale_transitions: Staleness-guard refreshes that changed the
            stale set.
    """

    name: str
    seed: int
    duration_s: float
    session_count: int
    completed_count: int
    failed_count: int
    availability: float
    total_retries: int
    total_retry_wait_s: float
    recovered_sessions: int
    faults_scheduled: int
    faults_injected: Dict[str, int] = field(default_factory=dict)
    faults_recovered: Dict[str, int] = field(default_factory=dict)
    mean_fault_mttr_s: float = 0.0
    snmp_blackout_skips: int = 0
    metrics: Optional[SessionMetrics] = None
    failover_count: int = 0
    failover_stall_s_total: float = 0.0
    failover_stall_s_p95: float = 0.0
    sessions_failed_over: int = 0
    failover_failed_sessions: int = 0
    preemptions: int = 0
    p95_stall_s: float = 0.0
    breaker_trips: Dict[str, int] = field(default_factory=dict)
    breaker_resets: Dict[str, int] = field(default_factory=dict)
    stale_transitions: int = 0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (JSON-serialisable) for the chaos CLI."""
        return asdict(self)


@dataclass
class ResilienceRun:
    """A finished chaos run: the report plus the live objects behind it."""

    report: ResilienceReport
    service: VoDService
    injector: FaultInjector
    schedule: FaultSchedule


def run_resilience_experiment(
    seed: int = 42,
    duration_s: float = 4 * 3600.0,
    requests_per_node: int = 30,
    *,
    link_flap_rate_per_h: float = 2.0,
    link_degrade_rate_per_h: float = 2.0,
    server_crash_rate_per_h: float = 1.0,
    disk_failure_rate_per_h: float = 0.5,
    snmp_blackout_rate_per_h: float = 0.5,
    mean_fault_duration_s: float = 300.0,
    degrade_fraction: float = 0.5,
    retry_attempts: int = 5,
    retry_backoff_s: float = 20.0,
    session_failover: bool = False,
    failover_backoff_s: float = 15.0,
    breaker_threshold: int = 0,
    breaker_window_s: float = 600.0,
    breaker_cooldown_s: float = 300.0,
    max_stats_age_s: Optional[float] = None,
    config: Optional[ServiceConfig] = None,
    topology_factory: Callable[[], Topology] = build_grnet_topology,
    tracer: Optional[Tracer] = None,
    name: str = "resilience",
    service_hook: Optional[Callable[..., None]] = None,
) -> ResilienceRun:
    """Run one seeded chaos experiment end to end.

    The workload is :func:`~repro.workload.scenarios.regional_scenario`
    over every node; the fault storm is
    :meth:`FaultSchedule.seeded <repro.faults.schedule.FaultSchedule.seeded>`
    with the rates given, targeting every link and server of the
    topology.  Sessions run with retry/backoff enabled (unless a custom
    ``config`` says otherwise), so mid-stream source loss is survivable.

    Args:
        seed: Master seed for workload and fault schedule alike.
        duration_s: Horizon for both (the sim drains three extra hours).
        requests_per_node: Mean workload intensity per node.
        link_flap_rate_per_h: Link failures per hour, whole network.
        link_degrade_rate_per_h: Bandwidth shortages per hour.
        server_crash_rate_per_h: Server crashes per hour.
        disk_failure_rate_per_h: Disk failures per hour.
        snmp_blackout_rate_per_h: Collector blackouts per hour.
        mean_fault_duration_s: Mean fault window length.
        degrade_fraction: Capacity fraction per bandwidth shortage.
        retry_attempts: Session retry budget (ignored with ``config``).
        retry_backoff_s: First retry delay (ignored with ``config``).
        session_failover: Enable the mid-stream failover supervisor
            (ignored with ``config``).
        failover_backoff_s: Supervisor re-decide backoff (ignored with
            ``config``).
        breaker_threshold: Circuit-breaker trip threshold, 0 = off
            (ignored with ``config``).
        breaker_window_s: Breaker failure-count window (ignored with
            ``config``).
        breaker_cooldown_s: Breaker half-open cooldown (ignored with
            ``config``).
        max_stats_age_s: Staleness-guard sample age limit, None = off
            (ignored with ``config``).
        config: Full service config override; defaults to a standard
            config with the retry/resilience knobs above applied.
        topology_factory: Builds the network (defaults to GRNET).
        tracer: Optional structured trace handed to the service.
        name: Report label.
        service_hook: Optional callable invoked with the freshly built
            service before it starts (e.g. to attach a streaming
            telemetry sink).

    Returns:
        The :class:`ResilienceRun` with the deterministic report.
    """
    if config is None:
        config = ServiceConfig(
            retry_attempts=retry_attempts,
            retry_backoff_s=retry_backoff_s,
            session_failover=session_failover,
            failover_backoff_s=failover_backoff_s,
            breaker_threshold=breaker_threshold,
            breaker_window_s=breaker_window_s,
            breaker_cooldown_s=breaker_cooldown_s,
            max_stats_age_s=max_stats_age_s,
        )
    # Fault targets come from a probe topology; build_service constructs
    # its own instance from the same factory, so only names cross over.
    probe = topology_factory()
    node_uids = list(probe.node_uids())
    link_names = [link.name for link in probe.links()]
    schedule = FaultSchedule.seeded(
        seed=seed,
        duration_s=duration_s,
        link_names=link_names,
        server_uids=node_uids,
        link_flap_rate_per_h=link_flap_rate_per_h,
        link_degrade_rate_per_h=link_degrade_rate_per_h,
        server_crash_rate_per_h=server_crash_rate_per_h,
        disk_failure_rate_per_h=disk_failure_rate_per_h,
        snmp_blackout_rate_per_h=snmp_blackout_rate_per_h,
        mean_fault_duration_s=mean_fault_duration_s,
        degrade_fraction=degrade_fraction,
        disks_per_server=config.disk_count,
    )

    scenario = regional_scenario(
        node_uids,
        requests_per_node=requests_per_node,
        horizon_s=duration_s,
        seed=seed,
    )
    experiment = ServiceExperiment(
        name=name,
        scenario=scenario,
        config=config,
        topology_factory=topology_factory,
        tracer=tracer,
    )
    service = build_service(experiment)
    if service_hook is not None:
        service_hook(service)
    sim = service.sim
    injector = FaultInjector(service, schedule)
    service.start()
    injector.start()
    for event in scenario.events:
        sim.schedule_at(
            event.time_s,
            lambda e=event: service.request_by_home(e.home_uid, e.title_id, e.client_id),
            name=f"request:{event.client_id}",
        )
    # Drain well past the horizon so backed-off sessions finish and the
    # last fault windows close (schedule recoveries may outlive them).
    sim.run(until=max(duration_s, schedule.horizon_s) + 3 * 3600.0)

    report = _build_report(name, seed, duration_s, service, injector, schedule)
    return ResilienceRun(
        report=report, service=service, injector=injector, schedule=schedule
    )


def _build_report(
    name: str,
    seed: int,
    duration_s: float,
    service: VoDService,
    injector: FaultInjector,
    schedule: FaultSchedule,
) -> ResilienceReport:
    """Reduce a finished chaos run to the deterministic report."""
    records = service.sessions
    finished = [r for r in records if r.request.finished]
    completed = [r for r in finished if r.completed]
    failed = [r for r in finished if not r.completed]
    supervisor = service.supervisor
    stalls = supervisor.stall_log if supervisor is not None else []
    completed_stalls = [r.stall_s for r in completed]
    breakers = service.breakers
    guard = service.staleness_guard
    return ResilienceReport(
        name=name,
        seed=seed,
        duration_s=duration_s,
        session_count=len(records),
        completed_count=len(completed),
        failed_count=len(failed),
        availability=(len(completed) / len(finished)) if finished else 1.0,
        total_retries=sum(r.retry_count for r in records),
        total_retry_wait_s=sum(r.retry_wait_s for r in records),
        recovered_sessions=sum(1 for r in records if r.recovered),
        faults_scheduled=len(schedule),
        faults_injected=dict(injector.injected_by_kind),
        faults_recovered=dict(injector.recovered_by_kind),
        mean_fault_mttr_s=injector.mean_mttr_s,
        snmp_blackout_skips=service.statistics.blackout_skips,
        metrics=summarize_sessions(records),
        failover_count=supervisor.failover_count if supervisor is not None else 0,
        failover_stall_s_total=sum(stalls),
        failover_stall_s_p95=percentile(stalls, 95.0) if stalls else 0.0,
        sessions_failed_over=sum(1 for r in records if r.failover_count > 0),
        failover_failed_sessions=(
            supervisor.failed_count if supervisor is not None else 0
        ),
        preemptions=supervisor.preemption_count if supervisor is not None else 0,
        p95_stall_s=(
            percentile(completed_stalls, 95.0) if completed_stalls else 0.0
        ),
        breaker_trips=dict(breakers.opened_by_kind) if breakers is not None else {},
        breaker_resets=dict(breakers.closed_by_kind) if breakers is not None else {},
        stale_transitions=guard.transition_count if guard is not None else 0,
    )


def render_resilience_report(report: ResilienceReport) -> str:
    """ASCII rendering of a chaos run, in the repo's report style."""
    lines = [
        f"resilience report: {report.name} (seed {report.seed}, "
        f"{report.duration_s / 3600.0:g} h horizon)",
        "-" * 64,
        f"sessions      {report.session_count:6d} submitted   "
        f"{report.completed_count:6d} completed   {report.failed_count:6d} failed",
        f"availability  {report.availability:8.2%}",
        f"retries       {report.total_retries:6d} taken       "
        f"{report.recovered_sessions:6d} sessions recovered   "
        f"{report.total_retry_wait_s:8.1f} s backed off",
        f"faults        {report.faults_scheduled:6d} scheduled   "
        f"mean MTTR {report.mean_fault_mttr_s:8.1f} s   "
        f"{report.snmp_blackout_skips} SNMP round(s) dark",
    ]
    for kind in sorted(report.faults_injected):
        lines.append(
            f"  {kind:<16} {report.faults_injected[kind]:5d} injected"
            f"   {report.faults_recovered.get(kind, 0):5d} recovered"
        )
    if report.failover_count or report.preemptions or report.failover_failed_sessions:
        lines.append(
            f"failover      {report.failover_count:6d} migrations  "
            f"{report.sessions_failed_over:6d} sessions moved       "
            f"{report.failover_failed_sessions:6d} failed (no holder)"
        )
        lines.append(
            f"  stall         {report.failover_stall_s_total:8.1f} s total   "
            f"p95 {report.failover_stall_s_p95:8.1f} s per failover   "
            f"({report.preemptions} preemption(s))"
        )
    if report.breaker_trips:
        trips = sum(report.breaker_trips.values())
        resets = sum(report.breaker_resets.values())
        lines.append(
            f"breakers      {trips:6d} tripped     {resets:6d} closed      "
            + "  ".join(
                f"{kind}:{count}" for kind, count in sorted(report.breaker_trips.items())
            )
        )
    if report.stale_transitions:
        lines.append(
            f"staleness     {report.stale_transitions:6d} stale-set change(s)"
        )
    if report.metrics is not None:
        m = report.metrics
        lines.append(
            f"sessions qos  startup {m.mean_startup_s:6.1f} s mean   "
            f"stall {m.mean_stall_s:6.1f} s mean   "
            f"{m.total_switches} switch(es)"
        )
    return "\n".join(lines)
