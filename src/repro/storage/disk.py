"""Single-disk model.

A :class:`Disk` holds video clusters up to a fixed capacity.  It only does
space accounting — bandwidth/seek behaviour is outside the paper's model,
which reasons purely about *capacity-oriented* storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import StorageError


@dataclass(frozen=True)
class StoredCluster:
    """One cluster resident on a disk.

    Attributes:
        title_id: Video the cluster belongs to.
        cluster_index: 0-based index of the cluster within the video.
        size_mb: Cluster size in MB (the tail cluster may be partial).
    """

    title_id: str
    cluster_index: int
    size_mb: float


class Disk:
    """A fixed-capacity disk storing video clusters."""

    def __init__(self, disk_index: int, capacity_mb: float):
        if not (capacity_mb > 0.0):
            raise StorageError(f"disk capacity must be positive, got {capacity_mb!r}")
        self.disk_index = disk_index
        self.capacity_mb = float(capacity_mb)
        self._clusters: Dict[Tuple[str, int], StoredCluster] = {}
        self._used_mb = 0.0

    @property
    def used_mb(self) -> float:
        """Megabytes currently stored."""
        return self._used_mb

    @property
    def free_mb(self) -> float:
        """Spare capacity in megabytes."""
        return max(self.capacity_mb - self._used_mb, 0.0)

    @property
    def cluster_count(self) -> int:
        """Number of stored clusters."""
        return len(self._clusters)

    def fits(self, size_mb: float) -> bool:
        """True if a cluster of ``size_mb`` fits in the spare capacity."""
        return size_mb <= self.free_mb + 1e-9

    def store(self, cluster: StoredCluster) -> None:
        """Store one cluster.

        Raises:
            StorageError: On overflow or duplicate (title, index) pairs.
        """
        key = (cluster.title_id, cluster.cluster_index)
        if key in self._clusters:
            raise StorageError(
                f"disk {self.disk_index}: cluster {key} already stored"
            )
        if not self.fits(cluster.size_mb):
            raise StorageError(
                f"disk {self.disk_index}: cluster of {cluster.size_mb:.2f} MB "
                f"does not fit in {self.free_mb:.2f} MB free"
            )
        self._clusters[key] = cluster
        self._used_mb += cluster.size_mb

    def remove(self, title_id: str, cluster_index: int) -> StoredCluster:
        """Remove one cluster and reclaim its space.

        Raises:
            StorageError: If the cluster is not on this disk.
        """
        key = (title_id, cluster_index)
        cluster = self._clusters.pop(key, None)
        if cluster is None:
            raise StorageError(f"disk {self.disk_index}: no cluster {key}")
        self._used_mb = max(self._used_mb - cluster.size_mb, 0.0)
        return cluster

    def has_cluster(self, title_id: str, cluster_index: int) -> bool:
        """True if the (title, index) cluster is resident."""
        return (title_id, cluster_index) in self._clusters

    def clusters_of(self, title_id: str) -> List[StoredCluster]:
        """All clusters of one title on this disk, by cluster index."""
        return sorted(
            (c for (tid, _), c in self._clusters.items() if tid == title_id),
            key=lambda c: c.cluster_index,
        )

    def title_ids(self) -> List[str]:
        """Distinct titles with at least one cluster here, sorted."""
        return sorted({tid for tid, _ in self._clusters})

    def __repr__(self) -> str:
        return (
            f"Disk(index={self.disk_index}, used={self._used_mb:.1f}/"
            f"{self.capacity_mb:.1f} MB, clusters={len(self._clusters)})"
        )
