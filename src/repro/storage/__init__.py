"""Video-server storage substrate.

Implements the paper's disk architecture (Figure 3): each server owns ``n``
disks; every locally held video is cut into ``p = ceil(size / c)`` clusters
of ``c`` MB and striped cyclically across the disks
(:mod:`repro.storage.striping`, :mod:`repro.storage.array`).  Popularity
bookkeeping for the DMA's "most popular" concept lives in
:mod:`repro.storage.cache`.
"""

from repro.storage.array import DiskArray
from repro.storage.cache import PopularityTracker
from repro.storage.disk import Disk, StoredCluster
from repro.storage.striping import StripingLayout, cluster_count, cluster_sizes, striping_layout
from repro.storage.video import VideoTitle

__all__ = [
    "Disk",
    "DiskArray",
    "PopularityTracker",
    "StoredCluster",
    "StripingLayout",
    "VideoTitle",
    "cluster_count",
    "cluster_sizes",
    "striping_layout",
]
