"""Data-striping placement math (paper section "The algorithm", Figure 3).

The paper fixes a common cluster size of ``c`` MB so a video of size ``s``
splits into ``p = s / c`` parts (we take the ceiling so the tail bytes are
not lost), then distributes the parts cyclically: with ``n`` disks,

* if ``n > p``: one part on each of the first ``p`` disks;
* if ``n <= p``: parts 1..n on disks 1..n, then the remaining ``p - n``
  parts wrap around "starting from disk 1 and reusing as many of them as
  needed".

Both regimes are the single rule ``part i -> disk i mod n``, which is what
:func:`striping_layout` returns and the property tests verify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import StripingError


def cluster_count(size_mb: float, cluster_mb: float) -> int:
    """Number of clusters ``p`` for a video of ``size_mb`` at cluster size
    ``cluster_mb`` (the paper's ``p = size / c``, rounded up).

    Raises:
        StripingError: If either argument is not positive.
    """
    if not (size_mb > 0.0):
        raise StripingError(f"video size must be positive, got {size_mb!r}")
    if not (cluster_mb > 0.0):
        raise StripingError(f"cluster size must be positive, got {cluster_mb!r}")
    return max(1, math.ceil(size_mb / cluster_mb - 1e-9))


def cluster_sizes(size_mb: float, cluster_mb: float) -> List[float]:
    """Per-cluster sizes in MB; all ``c`` except a possibly-smaller tail."""
    p = cluster_count(size_mb, cluster_mb)
    sizes = [min(cluster_mb, size_mb - i * cluster_mb) for i in range(p)]
    # Guard against float dust producing a non-positive tail.
    sizes[-1] = max(sizes[-1], size_mb - (p - 1) * cluster_mb)
    if sizes[-1] <= 0.0:
        sizes[-1] = cluster_mb
    return sizes


def striping_layout(part_count: int, disk_count: int) -> List[int]:
    """Disk index for every part, cyclic from disk 0.

    Args:
        part_count: Number of clusters ``p``.
        disk_count: Number of disks ``n``.

    Returns:
        ``layout[i]`` is the 0-based disk holding part ``i``.

    Raises:
        StripingError: If either count is not positive.
    """
    if part_count < 1:
        raise StripingError(f"part count must be >= 1, got {part_count}")
    if disk_count < 1:
        raise StripingError(f"disk count must be >= 1, got {disk_count}")
    return [i % disk_count for i in range(part_count)]


@dataclass(frozen=True)
class StripingLayout:
    """The complete placement of one video across a disk array.

    Attributes:
        title_id: The striped video.
        cluster_mb: Common cluster size ``c``.
        assignments: Tuple of (cluster index, disk index, cluster MB).
    """

    title_id: str
    cluster_mb: float
    assignments: Tuple[Tuple[int, int, float], ...]

    @classmethod
    def for_video(cls, title_id: str, size_mb: float, cluster_mb: float, disk_count: int) -> "StripingLayout":
        """Compute the layout for a video on ``disk_count`` disks."""
        sizes = cluster_sizes(size_mb, cluster_mb)
        disks = striping_layout(len(sizes), disk_count)
        return cls(
            title_id=title_id,
            cluster_mb=cluster_mb,
            assignments=tuple(
                (index, disk, size) for index, (disk, size) in enumerate(zip(disks, sizes))
            ),
        )

    @property
    def cluster_count(self) -> int:
        """Number of clusters ``p``."""
        return len(self.assignments)

    def disk_of(self, cluster_index: int) -> int:
        """Disk holding one cluster.

        Raises:
            StripingError: If the index is out of range.
        """
        if not (0 <= cluster_index < len(self.assignments)):
            raise StripingError(
                f"cluster index {cluster_index} out of range for "
                f"{len(self.assignments)} clusters"
            )
        return self.assignments[cluster_index][1]

    def clusters_on_disk(self, disk_index: int) -> List[int]:
        """Cluster indices placed on one disk, ascending."""
        return [index for index, disk, _ in self.assignments if disk == disk_index]

    def per_disk_mb(self) -> Dict[int, float]:
        """Megabytes this video occupies on each disk it touches."""
        usage: Dict[int, float] = {}
        for _, disk, size in self.assignments:
            usage[disk] = usage.get(disk, 0.0) + size
        return usage

    def total_mb(self) -> float:
        """Total stored megabytes (equals the video size)."""
        return sum(size for _, _, size in self.assignments)
