"""Disk array with cyclic striping (the paper's Figure 3 architecture).

A :class:`DiskArray` owns ``n`` equal disks and a common cluster size ``c``.
Storing a video computes its :class:`~repro.storage.striping.StripingLayout`
and places every cluster atomically — a video is either fully resident or
absent, which is the invariant the DMA's "Disks can tolerate the Video"
check relies on.

Fraction-aware placement policies (prefix replication, popularity-weighted
partial caching) additionally store *leading segments*: the first ``k``
clusters of a video's layout, tracked separately from full residents
(:meth:`store_segment` / :meth:`resident_fraction`).  A segment that grows
to cover every cluster is promoted to an ordinary full resident in place.
The whole-title API (:meth:`has_video`, :meth:`stored_title_ids`,
:meth:`is_servable`) keeps meaning *fully* resident, so the DMA and the
VRA's full-holder reasoning are untouched by partial residency.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Set

from repro.errors import StorageError, StripingError
from repro.storage.disk import Disk, StoredCluster
from repro.storage.striping import StripingLayout
from repro.storage.video import VideoTitle


class DiskArray:
    """``n`` disks of equal capacity behind one striping policy."""

    def __init__(self, disk_count: int, disk_capacity_mb: float, cluster_mb: float):
        if disk_count < 1:
            raise StripingError(f"disk count must be >= 1, got {disk_count}")
        if not (cluster_mb > 0.0):
            raise StripingError(f"cluster size must be positive, got {cluster_mb!r}")
        if not (disk_capacity_mb > 0.0):
            raise StorageError(f"disk capacity must be positive, got {disk_capacity_mb!r}")
        self.cluster_mb = float(cluster_mb)
        self._disks = [Disk(i, disk_capacity_mb) for i in range(disk_count)]
        self._videos: Dict[str, VideoTitle] = {}
        self._layouts: Dict[str, StripingLayout] = {}
        #: Partially resident videos: title -> video / full layout /
        #: number of leading clusters resident.  Disjoint from
        #: ``_videos`` — promotion moves a title between the two.
        self._partials: Dict[str, VideoTitle] = {}
        self._partial_layouts: Dict[str, StripingLayout] = {}
        self._partial_counts: Dict[str, int] = {}
        self._failed_disks: Set[int] = set()
        #: Optional listener fired when servability can move (store,
        #: remove, disk failure/restore) — an input of the VRA poll
        #: answer; the service's decision-key cache invalidates on it.
        self.on_change: Optional[Callable[[], None]] = None

    def _touch(self) -> None:
        if self.on_change is not None:
            self.on_change()

    # ------------------------------------------------------------------ #
    # capacity
    # ------------------------------------------------------------------ #
    @property
    def disk_count(self) -> int:
        return len(self._disks)

    @property
    def total_capacity_mb(self) -> float:
        """Aggregate capacity across all disks."""
        return sum(d.capacity_mb for d in self._disks)

    @property
    def used_mb(self) -> float:
        """Aggregate used space across all disks."""
        return sum(d.used_mb for d in self._disks)

    @property
    def free_mb(self) -> float:
        """Aggregate free space across all disks."""
        return sum(d.free_mb for d in self._disks)

    def disk(self, index: int) -> Disk:
        """One disk by 0-based index.

        Raises:
            StorageError: If the index is out of range.
        """
        if not (0 <= index < len(self._disks)):
            raise StorageError(f"disk index {index} out of range 0..{len(self._disks) - 1}")
        return self._disks[index]

    def disks(self) -> List[Disk]:
        """All disks, in index order."""
        return list(self._disks)

    # ------------------------------------------------------------------ #
    # disk failures (fault-injection surface)
    # ------------------------------------------------------------------ #
    @property
    def failed_disk_indices(self) -> List[int]:
        """Indices of currently failed disks, sorted."""
        return sorted(self._failed_disks)

    def fail_disk(self, index: int) -> None:
        """Mark one disk failed.

        Cyclic striping spreads every multi-cluster video over all disks,
        so a failed disk typically makes most resident titles unservable
        (:meth:`is_servable`) until :meth:`restore_disk`.  The clusters
        themselves are kept — the model treats recovery as a disk swap
        plus resync, after which the title serves again.  Idempotent.

        Raises:
            StorageError: If the index is out of range.
        """
        self.disk(index)  # range check
        self._failed_disks.add(index)
        self._touch()

    def restore_disk(self, index: int) -> None:
        """Bring a failed disk back into service.  Idempotent.

        Raises:
            StorageError: If the index is out of range.
        """
        self.disk(index)  # range check
        self._failed_disks.discard(index)
        self._touch()

    def is_servable(self, title_id: str) -> bool:
        """True when the video is resident and touches no failed disk.

        A video with any cluster on a failed disk cannot be streamed; one
        laid out entirely on surviving disks still can.  With no failed
        disks this is exactly :meth:`has_video`.
        """
        if title_id not in self._videos:
            return False
        if not self._failed_disks:
            return True
        return all(
            disk_index not in self._failed_disks
            for _, disk_index, _ in self._layouts[title_id].assignments
        )

    # ------------------------------------------------------------------ #
    # videos
    # ------------------------------------------------------------------ #
    def layout_for(self, video: VideoTitle) -> StripingLayout:
        """The striping layout storing ``video`` would use."""
        return StripingLayout.for_video(
            video.title_id, video.size_mb, self.cluster_mb, self.disk_count
        )

    def can_store(self, video: VideoTitle) -> bool:
        """The DMA's "Disks can tolerate the Video" predicate: every disk has
        room for its share of the video's clusters."""
        if video.title_id in self._videos or video.title_id in self._partials:
            return False
        layout = self.layout_for(video)
        for disk_index, needed_mb in layout.per_disk_mb().items():
            if disk_index in self._failed_disks:
                return False
            if needed_mb > self._disks[disk_index].free_mb + 1e-9:
                return False
        return True

    def store(self, video: VideoTitle) -> StripingLayout:
        """Stripe a video onto the disks ("Write Video to Disks").

        Raises:
            StorageError: If the video is already stored or does not fit;
                on failure no cluster is left behind.
        """
        if video.title_id in self._videos:
            raise StorageError(f"video {video.title_id!r} is already stored")
        if video.title_id in self._partials:
            raise StorageError(
                f"video {video.title_id!r} has a partial segment resident; "
                f"extend it with store_segment instead"
            )
        if not self.can_store(video):
            raise StorageError(
                f"video {video.title_id!r} ({video.size_mb:.1f} MB) does not "
                f"fit on the array (free={self.free_mb:.1f} MB)"
            )
        layout = self.layout_for(video)
        for cluster_index, disk_index, size_mb in layout.assignments:
            self._disks[disk_index].store(
                StoredCluster(video.title_id, cluster_index, size_mb)
            )
        self._videos[video.title_id] = video
        self._layouts[video.title_id] = layout
        self._touch()
        return layout

    def remove(self, title_id: str) -> VideoTitle:
        """Remove a video and all its clusters ("Delete Least Popular Video").

        Raises:
            StorageError: If the video is not stored.
        """
        video = self._videos.pop(title_id, None)
        if video is not None:
            layout = self._layouts.pop(title_id)
            for cluster_index, disk_index, _ in layout.assignments:
                self._disks[disk_index].remove(title_id, cluster_index)
            self._touch()
            return video
        video = self._partials.pop(title_id, None)
        if video is None:
            raise StorageError(f"video {title_id!r} is not stored on this array")
        layout = self._partial_layouts.pop(title_id)
        count = self._partial_counts.pop(title_id)
        for cluster_index, disk_index, _ in layout.assignments[:count]:
            self._disks[disk_index].remove(title_id, cluster_index)
        self._touch()
        return video

    def has_video(self, title_id: str) -> bool:
        """True if the full video is resident."""
        return title_id in self._videos

    def video(self, title_id: str) -> VideoTitle:
        """The stored video object.

        Raises:
            StorageError: If the video is not stored.
        """
        try:
            return self._videos[title_id]
        except KeyError:
            raise StorageError(f"video {title_id!r} is not stored on this array") from None

    def layout(self, title_id: str) -> StripingLayout:
        """The layout of a stored video.

        Raises:
            StorageError: If the video is not stored.
        """
        try:
            return self._layouts[title_id]
        except KeyError:
            raise StorageError(f"video {title_id!r} is not stored on this array") from None

    def stored_title_ids(self) -> List[str]:
        """Ids of fully resident videos, sorted."""
        return sorted(self._videos)

    def stored_videos(self) -> List[VideoTitle]:
        """Resident video objects, sorted by id."""
        return [self._videos[tid] for tid in self.stored_title_ids()]

    # ------------------------------------------------------------------ #
    # fractional segments (prefix / partial placement policies)
    # ------------------------------------------------------------------ #
    def _segment_cluster_count(self, video: VideoTitle, fraction: float) -> int:
        """Leading clusters needed to cover ``fraction`` of the video."""
        layout = self.layout_for(video)
        if fraction >= 1.0:
            return layout.cluster_count
        needed_mb = fraction * video.size_mb
        count = math.ceil(needed_mb / self.cluster_mb - 1e-9)
        return max(1, min(layout.cluster_count, count))

    def can_store_segment(self, video: VideoTitle, fraction: float) -> bool:
        """True when the leading segment covering ``fraction`` of the video
        fits (extending any already-resident prefix counts only the new
        clusters)."""
        if not (0.0 < fraction <= 1.0):
            return False
        if video.title_id in self._videos:
            return False
        target = self._segment_cluster_count(video, fraction)
        current = self._partial_counts.get(video.title_id, 0)
        if target <= current:
            return True
        layout = (
            self._partial_layouts.get(video.title_id) or self.layout_for(video)
        )
        needed: Dict[int, float] = {}
        for _, disk_index, size_mb in layout.assignments[current:target]:
            needed[disk_index] = needed.get(disk_index, 0.0) + size_mb
        for disk_index, needed_mb in needed.items():
            if disk_index in self._failed_disks:
                return False
            if needed_mb > self._disks[disk_index].free_mb + 1e-9:
                return False
        return True

    def store_segment(self, video: VideoTitle, fraction: float) -> float:
        """Store (or extend to) the leading segment covering ``fraction`` of
        the video; returns the resident fraction afterwards.

        A segment that reaches every cluster is promoted to an ordinary
        full resident (:meth:`has_video` becomes true).  Shrinking is not
        supported — a target at or below the current residency is a no-op.

        Raises:
            StorageError: If the video is already fully stored, the
                fraction is out of (0, 1], or the new clusters do not fit;
                on failure no new cluster is left behind.
        """
        title_id = video.title_id
        if title_id in self._videos:
            raise StorageError(f"video {title_id!r} is already fully stored")
        if not (0.0 < fraction <= 1.0):
            raise StorageError(
                f"segment fraction must be in (0, 1], got {fraction!r}"
            )
        target = self._segment_cluster_count(video, fraction)
        current = self._partial_counts.get(title_id, 0)
        if target > current:
            if not self.can_store_segment(video, fraction):
                raise StorageError(
                    f"segment of video {title_id!r} ({fraction:.3f} of "
                    f"{video.size_mb:.1f} MB) does not fit on the array "
                    f"(free={self.free_mb:.1f} MB)"
                )
            layout = self._partial_layouts.get(title_id) or self.layout_for(video)
            for cluster_index, disk_index, size_mb in layout.assignments[
                current:target
            ]:
                self._disks[disk_index].store(
                    StoredCluster(title_id, cluster_index, size_mb)
                )
            if target == layout.cluster_count:
                # Promotion: every cluster is now resident — reclassify as
                # a full video without touching the disks again.
                self._partials.pop(title_id, None)
                self._partial_layouts.pop(title_id, None)
                self._partial_counts.pop(title_id, None)
                self._videos[title_id] = video
                self._layouts[title_id] = layout
            else:
                self._partials[title_id] = video
                self._partial_layouts[title_id] = layout
                self._partial_counts[title_id] = target
            self._touch()
        return self.resident_fraction(title_id)

    def resident_fraction(self, title_id: str) -> float:
        """Fraction of the video resident locally: 1.0 when fully stored,
        the stored-bytes share for a partial segment, 0.0 otherwise."""
        if title_id in self._videos:
            return 1.0
        video = self._partials.get(title_id)
        if video is None:
            return 0.0
        layout = self._partial_layouts[title_id]
        count = self._partial_counts[title_id]
        resident_mb = sum(size for _, _, size in layout.assignments[:count])
        if video.size_mb <= 0.0:
            return 1.0
        return min(1.0, resident_mb / video.size_mb)

    def resident_cluster_count(self, title_id: str) -> int:
        """Number of leading clusters resident (full count when stored)."""
        if title_id in self._videos:
            return self._layouts[title_id].cluster_count
        return self._partial_counts.get(title_id, 0)

    def has_segment(self, title_id: str) -> bool:
        """True if a partial (not full) segment of the video is resident."""
        return title_id in self._partials

    def partial_title_ids(self) -> List[str]:
        """Ids with a partial segment resident, sorted."""
        return sorted(self._partials)

    def resident_title_ids(self) -> List[str]:
        """Ids with any residency — full or partial — sorted."""
        if not self._partials:
            return self.stored_title_ids()
        return sorted(set(self._videos) | set(self._partials))

    def segment_servable(self, title_id: str) -> bool:
        """True when a partial segment is resident and touches no failed
        disk (the analogue of :meth:`is_servable` for prefixes)."""
        if title_id not in self._partials:
            return False
        if not self._failed_disks:
            return True
        count = self._partial_counts[title_id]
        return all(
            disk_index not in self._failed_disks
            for _, disk_index, _ in self._partial_layouts[title_id].assignments[:count]
        )

    def cluster_servable(self, title_id: str, cluster_index: int) -> bool:
        """True when one specific cluster is resident on a healthy disk —
        the per-cluster question a prefix-serving session asks."""
        if title_id in self._videos:
            layout = self._layouts[title_id]
            count = layout.cluster_count
        elif title_id in self._partials:
            layout = self._partial_layouts[title_id]
            count = self._partial_counts[title_id]
        else:
            return False
        if not (0 <= cluster_index < count):
            return False
        return layout.assignments[cluster_index][1] not in self._failed_disks

    def __repr__(self) -> str:
        return (
            f"DiskArray(disks={self.disk_count}, cluster={self.cluster_mb:g} MB, "
            f"videos={len(self._videos)}, used={self.used_mb:.1f}/"
            f"{self.total_capacity_mb:.1f} MB)"
        )
