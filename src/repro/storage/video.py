"""Video title model for the storage layer.

The DMA and the striping math never look at video *content*; a title is its
id plus size, duration and playback bitrate.  (The database layer has its
own user-facing record, :class:`repro.database.records.TitleInfo`; keeping
the storage model separate preserves the substrate layering.)
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VideoTitle:
    """A video title as the storage and streaming layers see it.

    Attributes:
        title_id: Stable identifier.
        name: Display name (defaults to the id).
        size_mb: Total size in megabytes.
        duration_s: Playback duration in seconds.
        bitrate_mbps: Playback rate in megabits/second; defaults to the
            rate implied by size over duration.
    """

    title_id: str
    size_mb: float
    duration_s: float
    name: str = ""
    bitrate_mbps: float = 0.0

    def __post_init__(self) -> None:
        if not self.title_id:
            raise ValueError("title_id must be non-empty")
        if not (self.size_mb > 0.0):
            raise ValueError(f"video size must be positive, got {self.size_mb!r}")
        if not (self.duration_s > 0.0):
            raise ValueError(f"video duration must be positive, got {self.duration_s!r}")
        if not self.name:
            object.__setattr__(self, "name", self.title_id)
        if self.bitrate_mbps <= 0.0:
            object.__setattr__(
                self, "bitrate_mbps", self.size_mb * 8.0 / self.duration_s
            )

    def cluster_count(self, cluster_mb: float) -> int:
        """Number of striping clusters at cluster size ``cluster_mb``."""
        from repro.storage.striping import cluster_count

        return cluster_count(self.size_mb, cluster_mb)

    def playback_seconds_per_mb(self) -> float:
        """Seconds of playback carried by one megabyte of the video."""
        return self.duration_s / self.size_mb
