"""Popularity bookkeeping for the "most popular" concept.

The DMA counts requests ("points") per video title at each server.  The
:class:`PopularityTracker` keeps those counts plus the arrival order needed
for a deterministic least-popular choice when several titles tie.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import CacheError


class PopularityTracker:
    """Per-title request points with deterministic least-popular selection.

    Ties on points are broken by first-seen order (the earliest-tracked
    title is considered least popular), so simulations are reproducible.
    """

    def __init__(self):
        self._points: Dict[str, int] = {}
        self._first_seen: Dict[str, int] = {}
        self._order = itertools.count()
        #: Optional telemetry counter (anything with ``inc()``) bumped per
        #: awarded point; the service wires a registry counter here so the
        #: DMA's request pressure shows up in sampled timelines.
        self.points_counter = None

    def __len__(self) -> int:
        return len(self._points)

    @property
    def tracked_count(self) -> int:
        """Number of titles in the points table (telemetry gauge)."""
        return len(self._points)

    def give_point(self, title_id: str) -> int:
        """Award one point ("Give a point to the Video").

        Returns:
            The title's new point total.
        """
        self._ensure_tracked(title_id)
        self._points[title_id] += 1
        if self.points_counter is not None:
            self.points_counter.inc()
        return self._points[title_id]

    def points_of(self, title_id: str) -> int:
        """Current points of a title (0 if never seen)."""
        return self._points.get(title_id, 0)

    def track(self, title_id: str) -> None:
        """Start tracking a title with 0 points (e.g. stored on arrival)."""
        self._ensure_tracked(title_id)

    def total_points(self) -> int:
        """Sum of points across all tracked titles (the denominator of
        popularity-proportional placement shares)."""
        return sum(self._points.values())

    def least_popular(self, among: Iterable[str]) -> Optional[str]:
        """The least-popular title of a candidate set.

        Args:
            among: Title ids to consider (typically the cached set).

        Returns:
            The id with the fewest points (earliest-seen breaks ties), or
            None if ``among`` is empty.
        """
        best: Optional[Tuple[int, int, str]] = None
        for title_id in among:
            key = (
                self._points.get(title_id, 0),
                self._first_seen.get(title_id, -1),
                title_id,
            )
            if best is None or key < best:
                best = key
        return best[2] if best is not None else None

    def ranking(self) -> List[Tuple[str, int]]:
        """(title, points) pairs, most popular first (diagnostics)."""
        return sorted(
            self._points.items(),
            key=lambda item: (-item[1], self._first_seen[item[0]]),
        )

    def forget(self, title_id: str) -> None:
        """Drop a title's history entirely.

        The DMA does *not* call this on eviction — evicted titles keep their
        points so they can re-enter the cache, exactly as Figure 2 implies.
        Exposed for experiments that want periodic popularity decay.

        Raises:
            CacheError: If the title was never tracked.
        """
        if title_id not in self._points:
            raise CacheError(f"title {title_id!r} is not tracked")
        del self._points[title_id]
        del self._first_seen[title_id]

    def decay(self, factor: float) -> None:
        """Multiply every title's points by ``factor`` (floor), an ageing
        extension for long-running deployments.

        Raises:
            CacheError: If the factor is outside [0, 1].
        """
        if not (0.0 <= factor <= 1.0):
            raise CacheError(f"decay factor must be in [0, 1], got {factor!r}")
        for title_id in self._points:
            self._points[title_id] = int(self._points[title_id] * factor)

    def tracked_title_ids(self) -> List[str]:
        """All tracked titles, sorted."""
        return sorted(self._points)

    def _ensure_tracked(self, title_id: str) -> None:
        if not title_id:
            raise CacheError("title_id must be non-empty")
        if title_id not in self._points:
            self._points[title_id] = 0
            self._first_seen[title_id] = next(self._order)
