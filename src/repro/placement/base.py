"""The placement-policy contract: what each server stores, and when.

The paper's DMA caches *whole* titles only.  The related work (optimal
prefix replication across a proxy cluster, arXiv 1003.4049;
popularity-proportional partial caching) places *fractions* of titles, so
the storage seam is generalised here:

* :class:`PlacementResult` — the unified outcome of one placement pass.
  It subsumes the historical ``DmaResult`` (same fields, same semantics)
  and adds :attr:`PlacementResult.resident_fraction`, the fraction of the
  title resident locally after the pass (1.0 for whole-title hits/stores,
  0 < f < 1 for prefix segments, 0.0 when nothing is kept).
* :class:`PlacementPolicy` — the ABC every policy implements.  The
  service and :class:`~repro.server.video_server.VideoServer` talk only
  to this interface; concrete policies live in
  :mod:`repro.placement.whole_title`, :mod:`repro.placement.prefix` and
  :mod:`repro.placement.partial`.
* :class:`PlacementConfig` — one declarative config object
  (``ServiceConfig.placement`` / ``--placement`` on the CLI) replacing
  the ad-hoc DMA kwargs; :meth:`PlacementConfig.build` is the factory
  the server calls.

Every policy routes stores and evictions through the same hooks the DMA
used (``on_store`` / ``on_evict``), plus ``on_partial`` for prefix
segments — partial residency is advertised to the database *fraction
aware*, so the VRA can keep preferring full holders over prefix holders.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ServiceError
from repro.obs.registry import NULL_COUNTER
from repro.storage.array import DiskArray
from repro.storage.cache import PopularityTracker
from repro.storage.video import VideoTitle

#: Valid ``PlacementConfig.kind`` values, in comparison-table order.
PLACEMENT_KINDS: Tuple[str, ...] = ("dma", "prefix", "partial")

StoreHook = Optional[Callable[[str], None]]
PartialHook = Optional[Callable[[str, float], None]]


class PlacementAction(enum.Enum):
    """What one placement pass did (superset of the Figure 2 branches)."""

    #: Video was already fully cached; it received a point.
    HIT = "hit"
    #: Video fit immediately and was written to the disks.
    STORED = "stored"
    #: Video did not earn (more) local storage on this pass.
    POINT_ONLY = "point_only"
    #: A victim was evicted and the video was written.
    REPLACED = "replaced"
    #: Victim(s) evicted, yet the video still did not fit.
    EVICTED_NOT_STORED = "evicted_not_stored"
    #: A leading segment (prefix) of the video was written; the suffix
    #: still streams from remote full holders.
    PREFIX_STORED = "prefix_stored"


@dataclass(frozen=True)
class PlacementResult:
    """Outcome of one placement pass.

    Subsumes the historical ``DmaResult`` — the first five fields carry
    the exact Figure 2 semantics — and adds the fractional-residency
    outcome of prefix/partial policies.

    Attributes:
        title_id: The requested video.
        action: Which branch executed.
        points: The video's popularity points after the pass.
        evicted: Title ids removed from the cache by this pass.
        cached: True if the *full* video is on disk after the pass.
        resident_fraction: Fraction of the video resident locally after
            the pass: 1.0 when ``cached``, 0 < f < 1 for a prefix
            segment, 0.0 otherwise.
    """

    title_id: str
    action: PlacementAction
    points: int
    evicted: Tuple[str, ...] = ()
    cached: bool = False
    resident_fraction: float = 0.0


class PlacementPolicy(abc.ABC):
    """What a video server stores locally, decided per request.

    One instance runs per server, bound to that server's
    :class:`~repro.storage.array.DiskArray`.  Subclasses implement
    :meth:`_pass` (the per-request placement step); the public
    :meth:`on_request` template adds the shared pass counting and
    hit/prefix-hit tallies every policy reports identically.

    Args:
        array: The server's striped disk array.
        tracker: Popularity state; a fresh tracker is created if omitted.
        on_store: Callback invoked with a title id after a *full* copy is
            written (the server advertises the title in the database).
        on_evict: Callback invoked with a title id after it is deleted
            (the server withdraws the advertisement).
        on_partial: Callback invoked with ``(title_id, fraction)`` after
            a prefix segment is written or extended (the server
            advertises the title fraction-aware).
    """

    def __init__(
        self,
        array: DiskArray,
        tracker: Optional[PopularityTracker] = None,
        on_store: StoreHook = None,
        on_evict: StoreHook = None,
        on_partial: PartialHook = None,
    ):
        self.array = array
        self.tracker = tracker if tracker is not None else PopularityTracker()
        self._on_store = on_store
        self._on_evict = on_evict
        self._on_partial = on_partial
        self.pass_count = 0
        self.hit_count = 0
        #: Requests that found a prefix segment (not the full title)
        #: already resident when they arrived.
        self.prefix_hit_count = 0
        self.eviction_count = 0
        #: Passes whose eviction branch deleted victim(s) without managing
        #: to store the newcomer (the Figure 2 "lost victim" hazard).
        self.lost_victims = 0
        #: Telemetry counter behind :attr:`lost_victims`; the server wires
        #: ``placement.lost_victims`` here, no-op until then.
        self.lost_victim_counter = NULL_COUNTER
        #: Per-action pass tallies, keyed by ``PlacementAction.value``.
        self.action_counts: Dict[str, int] = {}
        #: Title ids exempt from eviction.  Figure 2 has no such notion —
        #: it will happily delete the only copy of a title in the whole
        #: network — so this set is empty unless the deployment opts into
        #: the seed-pinning extension (ServiceConfig.pin_seeded_titles).
        self.pinned: Set[str] = set()

    # ------------------------------------------------------------------ #
    # the contract
    # ------------------------------------------------------------------ #
    def on_request(self, video: VideoTitle) -> PlacementResult:
        """Run one placement pass for a video the server begins serving."""
        self.pass_count += 1
        prior_fraction = self.array.resident_fraction(video.title_id)
        result = self._pass(video)
        self.action_counts[result.action.value] = (
            self.action_counts.get(result.action.value, 0) + 1
        )
        if result.action is PlacementAction.HIT:
            self.hit_count += 1
        elif prior_fraction > 0.0:
            self.prefix_hit_count += 1
        return result

    @abc.abstractmethod
    def _pass(self, video: VideoTitle) -> PlacementResult:
        """One policy-specific placement step (called by :meth:`on_request`)."""

    def seed(self, video: VideoTitle) -> None:
        """Pre-load a full copy outside the request loop (service
        initialisation: "The video titles available on each VoD server").

        Raises:
            StorageError: If the video does not fit.
        """
        self.array.store(video)
        self.tracker.track(video.title_id)
        self._note_store(video.title_id)

    def pin(self, title_id: str) -> None:
        """Exempt a title from eviction (seed-pinning extension)."""
        self.pinned.add(title_id)

    def resident_ids(self) -> List[str]:
        """Ids with *any* local residency (full or prefix), sorted."""
        return self.array.resident_title_ids()

    # ------------------------------------------------------------------ #
    # shared helpers / introspection
    # ------------------------------------------------------------------ #
    def cached_title_ids(self) -> List[str]:
        """Ids currently fully cached on the array, sorted."""
        return self.array.stored_title_ids()

    def points_of(self, title_id: str) -> int:
        """Current popularity points of a title."""
        return self.tracker.points_of(title_id)

    def _store(self, video: VideoTitle) -> None:
        self.array.store(video)
        self.tracker.track(video.title_id)
        self._note_store(video.title_id)

    def _evict(self, title_id: str) -> None:
        self.array.remove(title_id)
        self.eviction_count += 1
        if self._on_evict is not None:
            self._on_evict(title_id)

    def _note_store(self, title_id: str) -> None:
        if self._on_store is not None:
            self._on_store(title_id)

    def _note_partial(self, title_id: str, fraction: float) -> None:
        if self._on_partial is not None:
            self._on_partial(title_id, fraction)


class FractionalPlacementPolicy(PlacementPolicy):
    """Shared machinery of the fraction-aware policies (prefix, partial).

    Subclasses decide *how much* of a title to keep (a target fraction in
    (0, 1]); this base turns that target into disk operations: evicting
    less-popular residents for room (full copies and segments alike, the
    same points comparison Figure 2 uses) and storing/extending the
    leading segment through :meth:`DiskArray.store_segment`.
    """

    def _make_room(self, video: VideoTitle, fraction: float) -> List[str]:
        """Evict less-popular unpinned residents until the segment fits.

        Mirrors the DMA's comparison — a victim is only deleted while the
        newcomer's points strictly exceed the victim's — but, like the
        ``evict_until_fits`` extension, keeps going until the segment fits
        or no qualifying victim remains.
        """
        evicted: List[str] = []
        candidates = (
            set(self.array.resident_title_ids()) - self.pinned - {video.title_id}
        )
        points = self.tracker.points_of(video.title_id)
        while not self.array.can_store_segment(video, fraction):
            victim = self.tracker.least_popular(candidates)
            if victim is None:
                break
            if not (points > self.tracker.points_of(victim)):
                break
            self._evict(victim)
            candidates.discard(victim)
            evicted.append(victim)
        if evicted and not self.array.can_store_segment(video, fraction):
            self.lost_victims += 1
            self.lost_victim_counter.inc()
        return evicted

    def _admit_fraction(
        self, video: VideoTitle, fraction: float, points: int, evicted: List[str]
    ) -> PlacementResult:
        """Store/extend the leading segment and report the outcome."""
        title_id = video.title_id
        if not self.array.can_store_segment(video, fraction):
            action = (
                PlacementAction.EVICTED_NOT_STORED
                if evicted
                else PlacementAction.POINT_ONLY
            )
            return PlacementResult(
                title_id=title_id,
                action=action,
                points=points,
                evicted=tuple(evicted),
                cached=False,
                resident_fraction=self.array.resident_fraction(title_id),
            )
        achieved = self.array.store_segment(video, fraction)
        if self.array.has_video(title_id):
            # The segment covered every cluster: this is a whole-title
            # store, advertised through the deferred-download path exactly
            # like a DMA store.
            self.tracker.track(title_id)
            self._note_store(title_id)
            action = PlacementAction.REPLACED if evicted else PlacementAction.STORED
            return PlacementResult(
                title_id=title_id,
                action=action,
                points=points,
                evicted=tuple(evicted),
                cached=True,
                resident_fraction=1.0,
            )
        # Prefix bytes are modelled as an instantaneous background fill
        # (they are small by construction), so the fraction-aware
        # advertisement is immediate — the VRA filters them out of the
        # full-holder list anyway.
        self.tracker.track(title_id)
        self._note_partial(title_id, achieved)
        return PlacementResult(
            title_id=title_id,
            action=PlacementAction.PREFIX_STORED,
            points=points,
            evicted=tuple(evicted),
            cached=False,
            resident_fraction=achieved,
        )


@dataclass(frozen=True)
class PlacementConfig:
    """Declarative placement-policy choice plus its knobs.

    One frozen object configures the whole deployment
    (``ServiceConfig.placement``, ``--placement`` on the CLI) instead of
    the historical ad-hoc DMA kwargs.

    Attributes:
        kind: ``"dma"`` (whole-title Figure 2, the default),
            ``"prefix"`` (first-N-minutes prefix of hot titles) or
            ``"partial"`` (popularity-proportional fractional caching).
        evict_until_fits: DMA extension — keep evicting while the
            newcomer still out-scores victims (kind ``dma`` only).
        prefix_minutes: Prefix length cached for hot titles, in playback
            minutes (kind ``prefix``).
        hot_points: Points a title needs before its prefix is cut
            (kind ``prefix``).
        partial_floor: Minimum fraction cached for any requested title
            (kind ``partial``).
    """

    kind: str = "dma"
    evict_until_fits: bool = False
    prefix_minutes: float = 10.0
    hot_points: int = 2
    partial_floor: float = 0.1

    def __post_init__(self) -> None:
        if self.kind not in PLACEMENT_KINDS:
            raise ServiceError(
                f"unknown placement kind {self.kind!r}; "
                f"expected one of {PLACEMENT_KINDS}"
            )
        if not (self.prefix_minutes > 0.0):
            raise ServiceError(
                f"prefix_minutes must be positive, got {self.prefix_minutes!r}"
            )
        if self.hot_points < 1:
            raise ServiceError(f"hot_points must be >= 1, got {self.hot_points!r}")
        if not (0.0 < self.partial_floor <= 1.0):
            raise ServiceError(
                f"partial_floor must be in (0, 1], got {self.partial_floor!r}"
            )

    @property
    def fractional(self) -> bool:
        """True when the policy can leave partial residents on the array
        (enables the service's prefix-local serving fast path)."""
        return self.kind != "dma"

    def build(
        self,
        array: DiskArray,
        on_store: StoreHook = None,
        on_evict: StoreHook = None,
        on_partial: PartialHook = None,
    ) -> PlacementPolicy:
        """Construct the configured policy bound to one server's array."""
        from repro.placement.partial import PopularityWeightedPartial
        from repro.placement.prefix import PrefixReplication
        from repro.placement.whole_title import WholeTitleDma

        if self.kind == "dma":
            return WholeTitleDma(
                array,
                on_store=on_store,
                on_evict=on_evict,
                on_partial=on_partial,
                evict_until_fits=self.evict_until_fits,
            )
        if self.kind == "prefix":
            return PrefixReplication(
                array,
                on_store=on_store,
                on_evict=on_evict,
                on_partial=on_partial,
                prefix_minutes=self.prefix_minutes,
                hot_points=self.hot_points,
            )
        return PopularityWeightedPartial(
            array,
            on_store=on_store,
            on_evict=on_evict,
            on_partial=on_partial,
            floor_fraction=self.partial_floor,
        )
