"""Prefix replication: cache the first N minutes of hot titles.

Per the optimal prefix-replication line of work (arXiv 1003.4049), a
server keeps only the *leading segment* of popular titles — enough
playback to mask the startup latency of fetching the suffix from a full
holder elsewhere in the network.  Compared to whole-title DMA this trades
a little suffix traffic for a far wider cache reach: where the DMA fits
``capacity / title_size`` titles, prefix replication fits roughly
``capacity / prefix_size``.

Placement rules, per request:

* full title resident -> HIT (point awarded), like the DMA;
* otherwise award a point; once the title reaches ``hot_points`` points,
  cut (or extend toward) a prefix of ``prefix_minutes`` of playback,
  evicting strictly-less-popular residents for room;
* titles shorter than the prefix window are stored whole — that is an
  ordinary full store, advertised through the same deferred-download
  path the DMA uses.

Prefix segments are advertised to the database *fraction aware*
(:meth:`ServiceDatabase.add_title_to_server` with ``fraction < 1``), so
the VRA keeps routing remote requests to full holders only; the segment
serves the local head-of-stream instead (the service's per-cluster
decision fast path).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CacheError
from repro.placement.base import (
    FractionalPlacementPolicy,
    PartialHook,
    PlacementAction,
    PlacementResult,
    StoreHook,
)
from repro.storage.array import DiskArray
from repro.storage.cache import PopularityTracker
from repro.storage.video import VideoTitle


class PrefixReplication(FractionalPlacementPolicy):
    """First-N-minutes prefix caching of hot titles.

    Args:
        array: The server's striped disk array.
        tracker: Popularity state; a fresh tracker is created if omitted.
        on_store: Full-copy advertisement hook (short titles stored whole).
        on_evict: Withdrawal hook.
        on_partial: Fraction-aware advertisement hook for prefix segments.
        prefix_minutes: Playback minutes of prefix to keep for hot titles.
        hot_points: Points a title must reach before its prefix is cut.
    """

    def __init__(
        self,
        array: DiskArray,
        tracker: Optional[PopularityTracker] = None,
        on_store: StoreHook = None,
        on_evict: StoreHook = None,
        on_partial: PartialHook = None,
        prefix_minutes: float = 10.0,
        hot_points: int = 2,
    ):
        if not (prefix_minutes > 0.0):
            raise CacheError(f"prefix_minutes must be positive, got {prefix_minutes!r}")
        if hot_points < 1:
            raise CacheError(f"hot_points must be >= 1, got {hot_points!r}")
        super().__init__(
            array,
            tracker=tracker,
            on_store=on_store,
            on_evict=on_evict,
            on_partial=on_partial,
        )
        self.prefix_minutes = float(prefix_minutes)
        self.hot_points = int(hot_points)

    def target_fraction(self, video: VideoTitle) -> float:
        """Fraction of ``video`` covered by the prefix window."""
        if video.duration_s <= 0.0:
            return 1.0
        return min(1.0, (self.prefix_minutes * 60.0) / video.duration_s)

    # ------------------------------------------------------------------ #
    def _pass(self, video: VideoTitle) -> PlacementResult:
        title_id = video.title_id
        if self.array.has_video(title_id):
            points = self.tracker.give_point(title_id)
            return PlacementResult(
                title_id=title_id,
                action=PlacementAction.HIT,
                points=points,
                cached=True,
                resident_fraction=1.0,
            )

        points = self.tracker.give_point(title_id)
        current = self.array.resident_fraction(title_id)
        target = self.target_fraction(video)
        if points < self.hot_points or target <= current + 1e-9:
            return PlacementResult(
                title_id=title_id,
                action=PlacementAction.POINT_ONLY,
                points=points,
                resident_fraction=current,
            )

        evicted = self._make_room(video, target)
        return self._admit_fraction(video, target, points, evicted)
