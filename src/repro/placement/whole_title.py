"""Whole-title DMA placement (the paper's Figure 2, behind the new API).

This is the existing Disk Manipulation Algorithm refactored onto the
:class:`~repro.placement.base.PlacementPolicy` interface — **bit-for-bit
identical by default** (the default-config replay gates in
``tests/placement/test_equivalence.py`` hold it to that).
Whenever the server begins downloading (serving) a video it executes one
pass of the Figure 2 loop body:

* video already on disk            -> give it a point;
* not on disk, array tolerates it  -> write it to the disks;
* otherwise                        -> give it a point, and if its points now
  exceed the least-popular cached video's points, delete that video and
  write the new one if the array now tolerates it.

Two faithful quirks of the pseudocode are preserved (and unit-tested):

1. A video stored because it fit immediately receives **no** point on that
   request — only already-cached or non-fitting videos are pointed.
2. The eviction branch deletes exactly one victim; if the newcomer still
   does not fit, the victim stays lost and the newcomer stays uncached.
   The ``evict_until_fits`` extension keeps evicting while the comparison
   still holds (see DESIGN.md X2 ablation).

The eviction loop maintains its candidate set incrementally (one sorted
snapshot per pass, victims discarded as they go) instead of rebuilding
the sorted resident list every iteration.  Behaviour is unchanged:
:meth:`PopularityTracker.least_popular` selects by the total order
``(points, first_seen, title_id)``, which is independent of candidate
iteration order, and no pass mutates points mid-loop.
"""

from __future__ import annotations

from typing import List, Optional

from repro.placement.base import (
    PartialHook,
    PlacementAction,
    PlacementPolicy,
    PlacementResult,
    StoreHook,
)
from repro.storage.array import DiskArray
from repro.storage.cache import PopularityTracker
from repro.storage.video import VideoTitle


class WholeTitleDma(PlacementPolicy):
    """Figure 2, bound to one server's disk array.

    Args:
        array: The server's striped disk array.
        tracker: Popularity state; a fresh tracker is created if omitted.
        on_store: Callback invoked with a title id after it is written
            (the service advertises the title in the database here).
        on_evict: Callback invoked with a title id after it is deleted
            (the service withdraws the advertisement here).
        on_partial: Accepted for interface uniformity; never fired — the
            DMA stores whole titles only.
        evict_until_fits: Extension — keep evicting successive least-popular
            victims while the newcomer still out-scores them and still does
            not fit.  Default False = exact Figure 2 behaviour.
    """

    def __init__(
        self,
        array: DiskArray,
        tracker: Optional[PopularityTracker] = None,
        on_store: StoreHook = None,
        on_evict: StoreHook = None,
        on_partial: PartialHook = None,
        evict_until_fits: bool = False,
    ):
        super().__init__(
            array,
            tracker=tracker,
            on_store=on_store,
            on_evict=on_evict,
            on_partial=on_partial,
        )
        self.evict_until_fits = evict_until_fits

    # ------------------------------------------------------------------ #
    def _pass(self, video: VideoTitle) -> PlacementResult:
        """One Figure 2 pass for a video the server begins serving."""
        if self.array.has_video(video.title_id):
            points = self.tracker.give_point(video.title_id)
            return PlacementResult(
                title_id=video.title_id,
                action=PlacementAction.HIT,
                points=points,
                cached=True,
                resident_fraction=1.0,
            )

        if self.array.can_store(video):
            self._store(video)
            return PlacementResult(
                title_id=video.title_id,
                action=PlacementAction.STORED,
                points=self.tracker.points_of(video.title_id),
                cached=True,
                resident_fraction=1.0,
            )

        points = self.tracker.give_point(video.title_id)
        evicted = self._try_replacement(video)
        cached = self.array.has_video(video.title_id)
        if cached:
            action = PlacementAction.REPLACED
        elif evicted:
            action = PlacementAction.EVICTED_NOT_STORED
            self.lost_victims += 1
            self.lost_victim_counter.inc()
        else:
            action = PlacementAction.POINT_ONLY
        return PlacementResult(
            title_id=video.title_id,
            action=action,
            points=points,
            evicted=tuple(evicted),
            cached=cached,
            resident_fraction=1.0 if cached else 0.0,
        )

    # ------------------------------------------------------------------ #
    def _try_replacement(self, video: VideoTitle) -> List[str]:
        """The eviction branch of Figure 2; returns evicted title ids."""
        evicted: List[str] = []
        # One snapshot per pass: victims leave the set as they are evicted,
        # and the newcomer's points are fixed for the whole loop (no pass
        # awards points mid-eviction).
        candidates = set(self.array.stored_title_ids()) - self.pinned
        points = self.tracker.points_of(video.title_id)
        while True:
            victim = self.tracker.least_popular(candidates)
            if victim is None:
                break
            if not (points > self.tracker.points_of(victim)):
                break
            self._evict(victim)
            candidates.discard(victim)
            evicted.append(victim)
            if self.array.can_store(video):
                self._store(video)
                break
            if not self.evict_until_fits:
                break  # exact Figure 2: one victim only
        return evicted
