"""Popularity-weighted partial caching: points-proportional fractions.

Each requested title earns a cache share proportional to its share of
the server's total popularity points — a fractional analogue of the
square-root/proportional replication results surveyed in the scalable
distributed-VoD bounds (arXiv 0804.0743).  A title holding ``p`` of the
server's ``P`` total points targets

    fraction = clamp(max(floor, (p / P) * capacity / size), 0, 1)

of itself resident, as a leading segment.  Fractions grow with points
(segments extend in place, cluster by cluster) and shrink only by
eviction of the whole segment when hotter titles need the room.

Full stores (a title whose target reaches 1.0) go through the same
deferred-download advertisement path the DMA uses; partial segments are
advertised fraction-aware so the VRA keeps preferring full holders.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CacheError
from repro.placement.base import (
    FractionalPlacementPolicy,
    PartialHook,
    PlacementAction,
    PlacementResult,
    StoreHook,
)
from repro.storage.array import DiskArray
from repro.storage.cache import PopularityTracker
from repro.storage.video import VideoTitle


class PopularityWeightedPartial(FractionalPlacementPolicy):
    """Points-proportional fractional caching.

    Args:
        array: The server's striped disk array.
        tracker: Popularity state; a fresh tracker is created if omitted.
        on_store: Full-copy advertisement hook (titles whose proportional
            share reaches the whole title).
        on_evict: Withdrawal hook.
        on_partial: Fraction-aware advertisement hook for segments.
        floor_fraction: Minimum fraction any requested title targets, so
            cold titles still cache a head-of-stream segment.
    """

    def __init__(
        self,
        array: DiskArray,
        tracker: Optional[PopularityTracker] = None,
        on_store: StoreHook = None,
        on_evict: StoreHook = None,
        on_partial: PartialHook = None,
        floor_fraction: float = 0.1,
    ):
        if not (0.0 < floor_fraction <= 1.0):
            raise CacheError(
                f"floor_fraction must be in (0, 1], got {floor_fraction!r}"
            )
        super().__init__(
            array,
            tracker=tracker,
            on_store=on_store,
            on_evict=on_evict,
            on_partial=on_partial,
        )
        self.floor_fraction = float(floor_fraction)

    def target_fraction(self, video: VideoTitle) -> float:
        """Points-proportional target fraction for ``video``."""
        total = self.tracker.total_points()
        share = 0.0
        if total > 0 and video.size_mb > 0.0:
            points = self.tracker.points_of(video.title_id)
            share = (points / total) * (self.array.total_capacity_mb / video.size_mb)
        return min(1.0, max(self.floor_fraction, share))

    # ------------------------------------------------------------------ #
    def _pass(self, video: VideoTitle) -> PlacementResult:
        title_id = video.title_id
        if self.array.has_video(title_id):
            points = self.tracker.give_point(title_id)
            return PlacementResult(
                title_id=title_id,
                action=PlacementAction.HIT,
                points=points,
                cached=True,
                resident_fraction=1.0,
            )

        points = self.tracker.give_point(title_id)
        current = self.array.resident_fraction(title_id)
        target = self.target_fraction(video)
        if target <= current + 1e-9:
            return PlacementResult(
                title_id=title_id,
                action=PlacementAction.POINT_ONLY,
                points=points,
                resident_fraction=current,
            )

        evicted = self._make_room(video, target)
        return self._admit_fraction(video, target, points, evicted)
