"""Placement policies: what each video server stores, and when.

The paper's whole-title DMA (Figure 2) is one policy among several here;
:class:`PlacementConfig` selects and parameterises the deployment-wide
choice, and every server runs one :class:`PlacementPolicy` instance
bound to its disk array.  See DESIGN.md § "Placement-policy subsystem".
"""

from repro.placement.base import (
    PLACEMENT_KINDS,
    FractionalPlacementPolicy,
    PlacementAction,
    PlacementConfig,
    PlacementPolicy,
    PlacementResult,
)
from repro.placement.partial import PopularityWeightedPartial
from repro.placement.prefix import PrefixReplication
from repro.placement.whole_title import WholeTitleDma

__all__ = [
    "FractionalPlacementPolicy",
    "PLACEMENT_KINDS",
    "PlacementAction",
    "PlacementConfig",
    "PlacementPolicy",
    "PlacementResult",
    "PopularityWeightedPartial",
    "PrefixReplication",
    "WholeTitleDma",
]
