"""repro — a reproduction of "A Dynamic Distributed Video on Demand Service"
(Bouras, Kapoulas, Konidaris, Sevasti; ICDCS 2000).

The package implements the paper's two algorithms and every substrate they
run on:

* **DMA** — the Disk Manipulation Algorithm: popularity ("most popular")
  caching of whole video titles per server, striped cyclically across the
  server's disks — now one of several placement policies behind the
  :class:`~repro.placement.base.PlacementPolicy` interface, next to prefix
  replication and popularity-weighted partial caching
  (:mod:`repro.placement`, :mod:`repro.storage`);
* **VRA** — the Virtual Routing Algorithm: LVN link weighting (equations
  1-4) plus Dijkstra server selection, re-evaluated per cluster for
  dynamic mid-stream switching (:mod:`repro.core.vra`,
  :mod:`repro.core.session`);
* substrates: a discrete-event simulator (:mod:`repro.sim`), a network
  model with flow accounting (:mod:`repro.network`), simulated SNMP
  statistics (:mod:`repro.snmp`), the service database
  (:mod:`repro.database`), video servers (:mod:`repro.server`) and
  clients (:mod:`repro.client`);
* the paper's GRNET case study — topology, Table 2 traffic, Tables 3-5 and
  Experiments A-D (:mod:`repro.network.grnet`,
  :mod:`repro.experiments.casestudy`);
* baselines and workload generators for the comparison benchmarks
  (:mod:`repro.baselines`, :mod:`repro.workload`).

Quickstart::

    from repro import Simulator, VoDService, VideoTitle
    from repro.network.grnet import build_grnet_topology

    sim = Simulator()
    service = VoDService(sim, build_grnet_topology())
    service.seed_title("U4", VideoTitle("movie-1", size_mb=900, duration_s=5400))
    service.attach_access_network("10.2.0", "U2")
    service.start()
    request, session, process = service.request_by_home("U2", "movie-1")
    sim.run(until=7200)
    print(session.record.servers_used, session.record.startup_delay_s)
"""

from repro.core.dma import DiskManipulationAlgorithm, DmaAction, DmaResult
from repro.core.lvn import link_validation_number, weight_table
from repro.placement.base import (
    PlacementAction,
    PlacementConfig,
    PlacementPolicy,
    PlacementResult,
)
from repro.placement.partial import PopularityWeightedPartial
from repro.placement.prefix import PrefixReplication
from repro.placement.whole_title import WholeTitleDma
from repro.core.service import ServiceConfig, VoDService
from repro.core.session import SessionRecord, StreamingSession
from repro.core.vra import VirtualRoutingAlgorithm, VraDecision
from repro.client.client import Client
from repro.network.link import Link
from repro.network.node import Node
from repro.network.topology import Topology
from repro.sim.engine import Simulator
from repro.storage.video import VideoTitle

__version__ = "1.0.0"

__all__ = [
    "Client",
    "DiskManipulationAlgorithm",
    "DmaAction",
    "DmaResult",
    "Link",
    "Node",
    "PlacementAction",
    "PlacementConfig",
    "PlacementPolicy",
    "PlacementResult",
    "PopularityWeightedPartial",
    "PrefixReplication",
    "ServiceConfig",
    "SessionRecord",
    "Simulator",
    "StreamingSession",
    "Topology",
    "VideoTitle",
    "VirtualRoutingAlgorithm",
    "VoDService",
    "VraDecision",
    "WholeTitleDma",
    "link_validation_number",
    "weight_table",
    "__version__",
]
