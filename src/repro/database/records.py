"""Entry types stored in the service database.

Each server and each link participating in the service has one entry; the
attributes of an entry are split between the full-access sub-module (user
visible) and the limited-access sub-module (admin/VRA visible), mirroring
the paper's "different attributes of this entry are accessible from each
one of the two interface modules".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set, Tuple


@dataclass(frozen=True)
class TitleInfo:
    """User-visible information about a video title (full access).

    Attributes:
        title_id: Stable identifier of the title.
        name: Display name.
        size_mb: Size in megabytes (drives striping and transfer time).
        duration_s: Playback duration in seconds.
        bitrate_mbps: Nominal playback rate; defaults to size/duration.
    """

    title_id: str
    name: str
    size_mb: float
    duration_s: float
    bitrate_mbps: float = 0.0

    def __post_init__(self) -> None:
        if not self.title_id:
            raise ValueError("title_id must be non-empty")
        if not (self.size_mb > 0.0):
            raise ValueError(f"title size must be positive, got {self.size_mb!r}")
        if not (self.duration_s > 0.0):
            raise ValueError(f"title duration must be positive, got {self.duration_s!r}")
        if self.bitrate_mbps <= 0.0:
            # size_mb megabytes over duration_s seconds, in megabits/second.
            object.__setattr__(
                self, "bitrate_mbps", self.size_mb * 8.0 / self.duration_s
            )


@dataclass
class ServerEntry:
    """Database entry for one video server.

    Full-access attributes: the set of title ids available on the server.
    Limited-access attributes: configuration (disk count, cache size,
    concurrent stream capacity) entered at initialisation and on change.
    """

    server_uid: str
    # full access
    title_ids: Set[str] = field(default_factory=set)
    # limited access (configuration information)
    disk_count: int = 1
    disk_capacity_mb: float = 0.0
    cache_capacity_mb: float = 0.0
    max_streams: int = 0
    online: bool = True
    config_version: int = 0

    def __post_init__(self) -> None:
        if not self.server_uid:
            raise ValueError("server_uid must be non-empty")
        if self.disk_count < 1:
            raise ValueError(f"disk_count must be >= 1, got {self.disk_count}")


@dataclass(frozen=True)
class LinkStats:
    """One SNMP statistics sample for a link (limited access).

    Attributes:
        used_mbps: Traffic_in + traffic_out of eq. (5), in Mbps.
        utilization: used / total bandwidth, in [0, 1].
        timestamp: Simulated time the sample was written.
    """

    used_mbps: float
    utilization: float
    timestamp: float


@dataclass
class LinkEntry:
    """Database entry for one network link.

    Limited-access attributes: total bandwidth (entered by administrators at
    initialisation, per the paper's "Network links' bandwidth" item) and the
    latest SNMP statistics sample.
    """

    link_name: str
    endpoints: Tuple[str, str]
    total_bandwidth_mbps: float
    latest_stats: Optional[LinkStats] = None
    config_version: int = 0

    def __post_init__(self) -> None:
        if not self.link_name:
            raise ValueError("link_name must be non-empty")
        if not (self.total_bandwidth_mbps > 0.0):
            raise ValueError(
                f"total bandwidth must be positive, got {self.total_bandwidth_mbps!r}"
            )

    @property
    def used_mbps(self) -> float:
        """Latest reported used bandwidth (0 before the first sample)."""
        return self.latest_stats.used_mbps if self.latest_stats else 0.0

    @property
    def utilization(self) -> float:
        """Latest reported utilisation in [0, 1] (0 before the first sample)."""
        return self.latest_stats.utilization if self.latest_stats else 0.0
