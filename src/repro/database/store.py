"""The in-memory service database.

One :class:`ServiceDatabase` instance backs the whole VoD service.  It keeps
one :class:`~repro.database.records.ServerEntry` per video server, one
:class:`~repro.database.records.LinkEntry` per network link and a global
title catalog, plus a reverse index from title to the servers advertising
it — the list the VRA's "Make a list of all the servers on the network that
have the requested video title" step reads.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.changes import ChangeJournal
from repro.database.access import AccessLevel, DatabaseHandle
from repro.database.records import LinkEntry, LinkStats, ServerEntry, TitleInfo
from repro.errors import DuplicateEntryError, MissingEntryError


class ServiceDatabase:
    """Authoritative state store of the VoD service."""

    def __init__(self):
        self._servers: Dict[str, ServerEntry] = {}
        self._links: Dict[str, LinkEntry] = {}
        self._titles: Dict[str, TitleInfo] = {}
        self._title_locations: Dict[str, Set[str]] = {}
        #: Resident fraction per (title, server) advertisement, stored only
        #: when below 1.0 — servers registered through ``ServerEntry``
        #: title sets and plain advertisements are full holders by default.
        self._holder_fractions: Dict[Tuple[str, str], float] = {}
        self._locations_version = 0
        self._link_stats_version = 0
        #: Journal of links whose *routing-visible* reported value moved.
        #: ``link_stats_version`` bumps on every write (the epoch contract
        #: of PR 1), but a write that re-reports the same ``used_mbps`` the
        #: VRA already sees is recorded nowhere — the common steady-SNMP
        #: round leaves this journal empty, which is what lets the routing
        #: cache patch instead of flush.
        self.stats_journal = ChangeJournal()

    @property
    def link_stats_version(self) -> int:
        """Monotonic counter bumped on every link-entry write (SNMP
        collector rounds, admin updates, runtime link registration).

        The paper-faithful VRA reads link usage from this database, so any
        epoch that embeds this counter is guaranteed to change whenever the
        VRA's routing inputs could have changed — the contract the
        epoch-versioned routing cache relies on."""
        return self._link_stats_version

    @property
    def title_locations_version(self) -> int:
        """Monotonic counter bumped whenever any title's holder list
        changes (advertisements and withdrawals).  Equal values guarantee
        every :meth:`servers_with_title` answer is unchanged — one input
        of the service's decision-key fast path."""
        return self._locations_version

    # ------------------------------------------------------------------ #
    # handles
    # ------------------------------------------------------------------ #
    def full_access(self) -> DatabaseHandle:
        """User-level handle (catalog browsing only)."""
        return DatabaseHandle(self, AccessLevel.FULL)

    def limited_access(self) -> DatabaseHandle:
        """Administrator-level handle (network + configuration attributes)."""
        return DatabaseHandle(self, AccessLevel.LIMITED)

    # ------------------------------------------------------------------ #
    # registration (service initialisation phase)
    # ------------------------------------------------------------------ #
    def register_server(self, entry: ServerEntry) -> ServerEntry:
        """Add a server entry.

        Raises:
            DuplicateEntryError: If the server uid is already registered.
        """
        if entry.server_uid in self._servers:
            raise DuplicateEntryError(f"server {entry.server_uid!r} already registered")
        self._servers[entry.server_uid] = entry
        for title_id in entry.title_ids:
            self._title_locations.setdefault(title_id, set()).add(entry.server_uid)
        return entry

    def register_link(self, entry: LinkEntry) -> LinkEntry:
        """Add a link entry.

        Raises:
            DuplicateEntryError: If the link name is already registered.
        """
        if entry.link_name in self._links:
            raise DuplicateEntryError(f"link {entry.link_name!r} already registered")
        self._links[entry.link_name] = entry
        self._link_stats_version += 1
        self.stats_journal.record(entry.link_name)
        return entry

    def register_title(self, info: TitleInfo) -> TitleInfo:
        """Add a title to the global catalog.

        Re-registering an identical record is a no-op, so several servers
        can declare the same title during initialisation.

        Raises:
            DuplicateEntryError: If the id exists with different attributes.
        """
        existing = self._titles.get(info.title_id)
        if existing is not None:
            if existing != info:
                raise DuplicateEntryError(
                    f"title {info.title_id!r} already registered with "
                    "different attributes"
                )
            return existing
        self._titles[info.title_id] = info
        self._title_locations.setdefault(info.title_id, set())
        return info

    # ------------------------------------------------------------------ #
    # catalog / title-location index
    # ------------------------------------------------------------------ #
    def list_titles(self) -> List[TitleInfo]:
        """All registered titles, sorted by id for stable output."""
        return [self._titles[tid] for tid in sorted(self._titles)]

    def search_titles(self, query: str) -> List[TitleInfo]:
        """Titles whose name contains ``query`` (case-insensitive)."""
        needle = query.lower()
        return [info for info in self.list_titles() if needle in info.name.lower()]

    def title_info(self, title_id: str) -> TitleInfo:
        """Catalog record for one title.

        Raises:
            MissingEntryError: If the title was never registered.
        """
        try:
            return self._titles[title_id]
        except KeyError:
            raise MissingEntryError(f"unknown title {title_id!r}") from None

    def has_title(self, title_id: str) -> bool:
        return title_id in self._titles

    def servers_with_title(self, title_id: str, min_fraction: float = 0.0) -> List[str]:
        """Uids of servers advertising a title, sorted for determinism.

        Args:
            title_id: The title to look up.
            min_fraction: Keep only holders advertising at least this
                resident fraction.  The VRA passes 1.0 so prefix holders
                never enter the full-holder candidate list; the default
                0.0 returns every advertisement.
        """
        self.title_info(title_id)  # raise MissingEntryError on unknown title
        holders = self._title_locations.get(title_id, ())
        if min_fraction <= 0.0 or not self._holder_fractions:
            return sorted(holders)
        return sorted(
            uid
            for uid in holders
            if self._holder_fractions.get((title_id, uid), 1.0)
            >= min_fraction - 1e-9
        )

    def add_title_to_server(
        self, server_uid: str, title_id: str, fraction: float = 1.0
    ) -> None:
        """Advertise a title on a server (placement-policy cache admission).

        Args:
            server_uid: The advertising server.
            title_id: The admitted title.
            fraction: Resident fraction advertised; below 1.0 marks a
                prefix/partial holder (re-advertising updates the
                fraction; reaching 1.0 promotes to a full holder).
        """
        entry = self.server_entry(server_uid)
        self.title_info(title_id)
        entry.title_ids.add(title_id)
        self._title_locations.setdefault(title_id, set()).add(server_uid)
        if fraction >= 1.0 - 1e-9:
            self._holder_fractions.pop((title_id, server_uid), None)
        else:
            self._holder_fractions[(title_id, server_uid)] = fraction
        self._locations_version += 1

    def remove_title_from_server(self, server_uid: str, title_id: str) -> None:
        """Withdraw a title from a server (placement-policy cache eviction).

        Raises:
            MissingEntryError: If the server does not advertise the title.
        """
        entry = self.server_entry(server_uid)
        if title_id not in entry.title_ids:
            raise MissingEntryError(
                f"server {server_uid!r} does not advertise title {title_id!r}"
            )
        entry.title_ids.discard(title_id)
        holders = self._title_locations.get(title_id)
        if holders:
            holders.discard(server_uid)
        self._holder_fractions.pop((title_id, server_uid), None)
        self._locations_version += 1

    def holds_title(self, server_uid: str, title_id: str) -> bool:
        """True when the server currently advertises the title (any
        fraction)."""
        return server_uid in self._title_locations.get(title_id, ())

    def holder_fraction(self, title_id: str, server_uid: str) -> float:
        """Advertised resident fraction of a holder: 1.0 for a full holder
        (including pre-fraction advertisements), the advertised fraction
        for a prefix/partial holder, 0.0 for a non-holder."""
        if server_uid not in self._title_locations.get(title_id, ()):
            return 0.0
        return self._holder_fractions.get((title_id, server_uid), 1.0)

    def server_title_ids(self, server_uid: str) -> Set[str]:
        """Copy of the title-id set advertised by one server."""
        return set(self.server_entry(server_uid).title_ids)

    # ------------------------------------------------------------------ #
    # entries
    # ------------------------------------------------------------------ #
    def server_entry(self, server_uid: str) -> ServerEntry:
        try:
            return self._servers[server_uid]
        except KeyError:
            raise MissingEntryError(f"unknown server {server_uid!r}") from None

    def server_uids(self) -> List[str]:
        """All registered server uids, sorted."""
        return sorted(self._servers)

    def link_entry(self, link_name: str) -> LinkEntry:
        try:
            return self._links[link_name]
        except KeyError:
            raise MissingEntryError(f"unknown link {link_name!r}") from None

    def link_entries(self) -> List[LinkEntry]:
        """All link entries, sorted by name."""
        return [self._links[name] for name in sorted(self._links)]

    # ------------------------------------------------------------------ #
    # limited-access mutations
    # ------------------------------------------------------------------ #
    def update_link_stats(self, link_name: str, stats: LinkStats) -> None:
        """Record the latest SNMP sample for a link.

        Every write bumps :attr:`link_stats_version` (the routing-epoch
        contract), but the link lands in :attr:`stats_journal` only when
        the value the VRA actually reads (``used_mbps``) changed — the
        dirty-set contract (DESIGN.md) is about routing inputs, not about
        write traffic.
        """
        entry = self.link_entry(link_name)
        changed = stats.used_mbps != entry.used_mbps
        entry.latest_stats = stats
        self._link_stats_version += 1
        if changed:
            self.stats_journal.record(link_name)

    def touch_links(self, link_names: Iterable[str]) -> None:
        """Mark links whose *routing-visible* weight changed without a
        new SNMP sample (staleness-guard inflation toggles, link-breaker
        trips and resets).

        The entries themselves are untouched — the adjustment lives in
        the service's weight provider — but the epoch counter bumps and
        the links land in :attr:`stats_journal`, so the delta-scoped
        routing cache repairs exactly these weights on the next decision.
        Cache invalidation thereby rides the existing machinery with no
        new paths.
        """
        touched = False
        for link_name in link_names:
            self.link_entry(link_name)  # validate
            self.stats_journal.record(link_name)
            touched = True
        if touched:
            self._link_stats_version += 1

    def update_server_config(self, server_uid: str, **attributes: object) -> None:
        """Update configuration attributes on a server entry.

        Raises:
            MissingEntryError: If the server or an attribute is unknown.
        """
        entry = self.server_entry(server_uid)
        for key, value in attributes.items():
            if not hasattr(entry, key) or key in ("server_uid", "title_ids"):
                raise MissingEntryError(
                    f"server entry has no configurable attribute {key!r}"
                )
            setattr(entry, key, value)
        entry.config_version += 1
