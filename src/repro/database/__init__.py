"""The VoD service database.

The paper's database "is conceptually divided into two similar modules: the
full-access one and the limited access one", with one entry per server and
per link.  The full-access side holds what users may see (available titles
and their info); the limited-access side holds network and configuration
attributes that only administrators and the VRA application read (link
bandwidth, SNMP utilisation, server configuration).

:mod:`repro.database.records` defines the entry types,
:mod:`repro.database.store` the database itself, and
:mod:`repro.database.access` the full/limited access handles that enforce
the visibility split.
"""

from repro.database.access import AccessLevel, DatabaseHandle
from repro.database.records import LinkEntry, LinkStats, ServerEntry, TitleInfo
from repro.database.store import ServiceDatabase

__all__ = [
    "AccessLevel",
    "DatabaseHandle",
    "LinkEntry",
    "LinkStats",
    "ServerEntry",
    "ServiceDatabase",
    "TitleInfo",
]
