"""Access-control handles for the service database.

The paper's interface has a full-access web module for users and a
limited-access module "to which only the administrators of the service can
have access".  A :class:`DatabaseHandle` wraps the database with one of the
two levels; limited-access (administrative) operations called through a
full-access handle raise :class:`~repro.errors.AccessDeniedError`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, List, Set

from repro.errors import AccessDeniedError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.database.records import LinkEntry, LinkStats, ServerEntry, TitleInfo
    from repro.database.store import ServiceDatabase


class AccessLevel(enum.Enum):
    """The two access levels of the paper's interface."""

    #: User level: may browse/search the catalog and see title locations.
    FULL = "full"
    #: Administrator level: may additionally read and write network and
    #: configuration attributes (the paper's "limited access" module).
    LIMITED = "limited"


class DatabaseHandle:
    """A view of the :class:`~repro.database.store.ServiceDatabase`.

    Full-access methods are available at both levels; administrative
    methods require :attr:`AccessLevel.LIMITED`.
    """

    def __init__(self, database: "ServiceDatabase", level: AccessLevel):
        self._database = database
        self.level = level

    def _require_admin(self, operation: str) -> None:
        if self.level is not AccessLevel.LIMITED:
            raise AccessDeniedError(
                f"operation {operation!r} requires the limited-access "
                "(administrator) module"
            )

    # ------------------------------------------------------------------ #
    # full-access (user) operations
    # ------------------------------------------------------------------ #
    def list_titles(self) -> List["TitleInfo"]:
        """All titles available anywhere in the service."""
        return self._database.list_titles()

    def search_titles(self, query: str) -> List["TitleInfo"]:
        """Case-insensitive substring search over title names."""
        return self._database.search_titles(query)

    def title_info(self, title_id: str) -> "TitleInfo":
        """Catalog information for a title."""
        return self._database.title_info(title_id)

    def servers_with_title(self, title_id: str) -> List[str]:
        """Uids of servers currently advertising a title."""
        return self._database.servers_with_title(title_id)

    def server_title_ids(self, server_uid: str) -> Set[str]:
        """Title ids advertised by one server."""
        return self._database.server_title_ids(server_uid)

    # ------------------------------------------------------------------ #
    # limited-access (administrator / VRA) operations
    # ------------------------------------------------------------------ #
    def server_entry(self, server_uid: str) -> "ServerEntry":
        """Full server entry, including configuration attributes."""
        self._require_admin("server_entry")
        return self._database.server_entry(server_uid)

    def link_entry(self, link_name: str) -> "LinkEntry":
        """Full link entry, including bandwidth and SNMP stats."""
        self._require_admin("link_entry")
        return self._database.link_entry(link_name)

    def link_entries(self) -> List["LinkEntry"]:
        """All link entries."""
        self._require_admin("link_entries")
        return self._database.link_entries()

    def update_link_stats(self, link_name: str, stats: "LinkStats") -> None:
        """Write an SNMP sample into a link entry (the SNMP module's job)."""
        self._require_admin("update_link_stats")
        self._database.update_link_stats(link_name, stats)

    def update_server_config(self, server_uid: str, **attributes: object) -> None:
        """Change configuration attributes of a server entry."""
        self._require_admin("update_server_config")
        self._database.update_server_config(server_uid, **attributes)

    def set_server_online(self, server_uid: str, online: bool) -> None:
        """Mark a server up or down (used by failure-injection tests)."""
        self._require_admin("set_server_online")
        self._database.update_server_config(server_uid, online=online)
