"""Per-request session spans.

A :class:`SessionSpan` follows one client request end to end: submission,
the DMA pass, every VRA decision (with its routing epoch and wall-clock
decision latency), every cluster delivery, every mid-stream switch, and
the final outcome.  It unifies the loose per-category trace records the
service used to emit ad hoc — the structured
:class:`~repro.sim.trace.Tracer` stays the sink (each span event is also
recorded there under a ``span.<kind>`` category), and spans additionally
keep their events together per request for export and analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.trace import Tracer


@dataclass(frozen=True)
class SpanEvent:
    """One timestamped event inside a span.

    Attributes:
        time: Simulated time of the event.
        kind: Event kind (``"vra.decision"``, ``"cluster.delivered"``,
            ``"switch"``, ``"finished"``, ...).
        attrs: Structured payload.
    """

    time: float
    kind: str
    attrs: Dict[str, object]


@dataclass
class SessionSpan:
    """The telemetry trail of one client request.

    Attributes:
        request_id: The request's unique id.
        client_id: The requesting client.
        title_id: The requested title.
        home_uid: The client's home server.
        started_at: Simulated submission time.
        events: Recorded events, in order.
        finished_at: Simulated completion time (None while running).
        status: Final request status (None while running).
        sink: Optional tracer receiving every event as ``span.<kind>``.
    """

    request_id: int
    client_id: str
    title_id: str
    home_uid: str
    started_at: float
    events: List[SpanEvent] = field(default_factory=list)
    finished_at: Optional[float] = None
    status: Optional[str] = None
    sink: Optional[Tracer] = None

    def add(self, time: float, kind: str, **attrs: object) -> SpanEvent:
        """Record one event (and forward it to the tracer sink)."""
        event = SpanEvent(time=time, kind=kind, attrs=attrs)
        self.events.append(event)
        if self.sink is not None:
            self.sink.record(
                time,
                f"span.{kind}",
                f"{self.client_id}/{self.title_id}",
                request_id=self.request_id,
                **attrs,
            )
        return event

    def finish(self, time: float, status: str) -> None:
        """Close the span with the request's final status."""
        self.finished_at = time
        self.status = status
        self.add(time, "finished", status=status)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def open(self) -> bool:
        """True while the request is still in flight."""
        return self.finished_at is None

    @property
    def duration_s(self) -> Optional[float]:
        """Submission-to-finish span length (None while open)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.started_at

    def events_of(self, kind: str) -> List[SpanEvent]:
        """Events of one kind, in order."""
        return [event for event in self.events if event.kind == kind]

    @property
    def decision_count(self) -> int:
        """VRA decisions taken for this request."""
        return len(self.events_of("vra.decision"))

    @property
    def switch_count(self) -> int:
        """Mid-stream server switches recorded."""
        return len(self.events_of("switch"))

    @property
    def servers_used(self) -> List[str]:
        """Distinct cluster source servers, in first-use order."""
        seen: List[str] = []
        for event in self.events_of("cluster.delivered"):
            uid = event.attrs.get("server_uid")
            if isinstance(uid, str) and uid not in seen:
                seen.append(uid)
        return seen

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by the JSONL export)."""
        return {
            "request_id": self.request_id,
            "client_id": self.client_id,
            "title_id": self.title_id,
            "home_uid": self.home_uid,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "status": self.status,
            "decision_count": self.decision_count,
            "switch_count": self.switch_count,
            "servers_used": self.servers_used,
            "events": [
                {"time": e.time, "kind": e.kind, **_jsonable(e.attrs)}
                for e in self.events
            ],
        }


def _jsonable(attrs: Dict[str, object]) -> Dict[str, object]:
    """Coerce payload values JSON can't represent (tuples) to lists."""
    out: Dict[str, object] = {}
    for key, value in attrs.items():
        if isinstance(value, tuple):
            out[key] = list(value)
        else:
            out[key] = value
    return out
