"""Telemetry serialisation and run summaries.

One run's telemetry flattens into a stream of JSON-ready row dicts
(:func:`telemetry_rows`) which :func:`export_jsonl` / :func:`export_csv`
serialise.  Row kinds:

``sample``
    One sampler snapshot of a gauge or counter: name, labels, time, value.
``counter`` / ``histogram``
    End-of-run totals and distribution summaries per instrument.
``span``
    One full session span (see :mod:`repro.obs.spans`).

:func:`summarize_telemetry` renders the operator-facing text summary the
``python -m repro obs`` subcommand prints.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, TextIO

from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import TelemetrySampler
from repro.obs.spans import SessionSpan
from repro.sim.trace import Tracer


def telemetry_rows(
    registry: MetricsRegistry,
    sampler: Optional[TelemetrySampler] = None,
    spans: Optional[Sequence[SessionSpan]] = None,
) -> Iterator[Dict[str, object]]:
    """Flatten one run's telemetry into JSON-ready row dicts."""
    if sampler is not None:
        for (name, labels), series in sorted(sampler.series().items()):
            label_dict = dict(labels)
            for time, value in series.samples():
                yield {
                    "kind": "sample",
                    "name": name,
                    "labels": label_dict,
                    "time": time,
                    "value": value,
                }
    for counter in registry.counters():
        yield {
            "kind": "counter",
            "name": counter.name,
            "labels": counter.label_dict(),
            "value": counter.value,
        }
    for histogram in registry.histograms():
        yield {
            "kind": "histogram",
            "name": histogram.name,
            "labels": histogram.label_dict(),
            **histogram.summary(),
        }
    for span in spans or ():
        yield {"kind": "span", **span.to_dict()}


def export_jsonl(rows: Iterable[Dict[str, object]], out: TextIO) -> int:
    """Write rows as JSON Lines; returns the row count."""
    count = 0
    for row in rows:
        out.write(json.dumps(row, sort_keys=True))
        out.write("\n")
        count += 1
    return count


def export_csv(rows: Iterable[Dict[str, object]], out: TextIO) -> int:
    """Write ``sample`` rows as CSV (kind,name,labels,time,value).

    Non-sample rows (counter totals, histogram summaries, spans) carry
    nested payloads that do not fit a flat table; they are flattened to
    their headline value or skipped (spans).

    Returns:
        The number of data rows written.
    """
    writer = csv.writer(out)
    writer.writerow(["kind", "name", "labels", "time", "value"])
    count = 0
    for row in rows:
        kind = row.get("kind")
        if kind == "span":
            continue
        labels = ";".join(f"{k}={v}" for k, v in sorted(dict(row.get("labels", {})).items()))
        if kind == "sample":
            value = row["value"]
            time = row["time"]
        elif kind == "counter":
            value, time = row["value"], ""
        elif kind == "histogram":
            value, time = row.get("mean", 0.0), ""
        else:
            continue
        writer.writerow([kind, row["name"], labels, time, value])
        count += 1
    return count


def summarize_telemetry(
    registry: MetricsRegistry,
    sampler: Optional[TelemetrySampler] = None,
    spans: Optional[Sequence[SessionSpan]] = None,
    tracer: Optional[Tracer] = None,
    top: int = 8,
) -> str:
    """Operator-facing text summary of one run's telemetry."""
    lines: List[str] = ["Telemetry summary", "=" * 40]
    if not registry.enabled:
        lines.append("observability disabled (no-op registry)")
        return "\n".join(lines)

    families = registry.families()
    lines.append(
        f"instruments: {len(registry)} across {len(families)} families "
        f"({len(registry.gauges())} gauges, {len(registry.counters())} counters, "
        f"{len(registry.histograms())} histograms)"
    )
    if sampler is not None:
        lines.append(
            f"sampling: {sampler.sample_count} rounds every {sampler.period_s:g} s "
            f"of simulated time"
        )

    counters = [c for c in registry.counters() if c.value > 0]
    if counters:
        lines.append("counters (non-zero):")
        for counter in counters:
            label_text = ",".join(f"{k}={v}" for k, v in counter.labels)
            suffix = f"{{{label_text}}}" if label_text else ""
            lines.append(f"  {counter.name + suffix:<44} {counter.value:12g}")

    histograms = [h for h in registry.histograms() if h.count > 0]
    if histograms:
        lines.append("histograms:")
        for histogram in histograms:
            s = histogram.summary()
            lines.append(
                f"  {histogram.name:<34} n={s['count']:<6g} mean={s['mean']:.3f} "
                f"p95={s['p95']:.3f} max={s['max']:.3f}"
            )

    if sampler is not None:
        hottest = _hottest_series(sampler, "link.utilization", top)
        if hottest:
            lines.append("hottest links (peak utilisation):")
            for labels, peak, avg in hottest:
                lines.append(
                    f"  {labels.get('link', '?'):<24} peak {peak:7.2%}  "
                    f"time-avg {avg:7.2%}"
                )
        fullest = _hottest_series(sampler, "server.cache_fraction", top)
        if fullest:
            lines.append("fullest caches (peak occupancy):")
            for labels, peak, avg in fullest:
                lines.append(
                    f"  {labels.get('server', '?'):<24} peak {peak:7.2%}  "
                    f"time-avg {avg:7.2%}"
                )

    if spans:
        finished = [s for s in spans if not s.open]
        switches = sum(s.switch_count for s in spans)
        decisions = sum(s.decision_count for s in spans)
        lines.append(
            f"spans: {len(spans)} sessions ({len(finished)} finished), "
            f"{decisions} VRA decisions, {switches} switches"
        )
    if tracer is not None and tracer.enabled:
        lines.append(
            f"trace: {len(tracer)} events in {len(tracer.categories())} "
            f"categories, {tracer.dropped_count} dropped by capacity bound"
        )
    return "\n".join(lines)


def _hottest_series(sampler: TelemetrySampler, family: str, top: int):
    """(labels, peak, time-average) of a family's series, hottest first."""
    ranked = []
    for labels, series in sampler.series_for(family):
        if len(series) == 0:
            continue
        ranked.append((labels, series.maximum(), series.time_average()))
    ranked.sort(key=lambda row: (-row[1], sorted(row[0].items())))
    return ranked[:top]
