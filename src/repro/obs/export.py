"""Telemetry serialisation and run summaries.

One run's telemetry flattens into a stream of JSON-ready row dicts
(:func:`telemetry_rows`) which :func:`export_jsonl` / :func:`export_csv`
serialise.  Row kinds:

``sample``
    One sampler snapshot of a gauge or counter: name, labels, time, value.
``counter`` / ``histogram``
    End-of-run totals and distribution summaries per instrument.
``span``
    One full session span (see :mod:`repro.obs.spans`).

:func:`summarize_telemetry` renders the operator-facing text summary the
``python -m repro obs`` subcommand prints.
"""

from __future__ import annotations

import csv
import json
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, TextIO, Tuple

from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import TelemetrySampler
from repro.obs.spans import SessionSpan
from repro.sim.trace import Tracer


def telemetry_rows(
    registry: MetricsRegistry,
    sampler: Optional[TelemetrySampler] = None,
    spans: Optional[Sequence[SessionSpan]] = None,
) -> Iterator[Dict[str, object]]:
    """Flatten one run's telemetry into JSON-ready row dicts."""
    if sampler is not None:
        for (name, labels), series in sorted(sampler.series().items()):
            label_dict = dict(labels)
            for time, value in series.samples():
                yield {
                    "kind": "sample",
                    "name": name,
                    "labels": label_dict,
                    "time": time,
                    "value": value,
                }
    for counter in registry.counters():
        yield {
            "kind": "counter",
            "name": counter.name,
            "labels": counter.label_dict(),
            "value": counter.value,
        }
    for histogram in registry.histograms():
        yield {
            "kind": "histogram",
            "name": histogram.name,
            "labels": histogram.label_dict(),
            **histogram.summary(),
        }
    for span in spans or ():
        yield {"kind": "span", **span.to_dict()}


def export_jsonl(rows: Iterable[Dict[str, object]], out: TextIO) -> int:
    """Write rows as JSON Lines; returns the row count."""
    count = 0
    for row in rows:
        out.write(json.dumps(row, sort_keys=True))
        out.write("\n")
        count += 1
    return count


#: Flat CSV schema shared by :func:`export_csv` and the streaming CSV sink.
#: ``value`` is the headline (sample value, counter total, histogram mean);
#: the distribution columns are only filled for histogram rows.
CSV_FIELDS = ["kind", "name", "labels", "time", "value", "count", "mean", "p50", "p95", "max"]


def csv_record(row: Dict[str, object]) -> Optional[List[object]]:
    """Flatten one telemetry row to the :data:`CSV_FIELDS` column list.

    Returns None for rows that do not fit the flat table (spans and the
    manifest/footer control rows) so callers can count them as skipped.
    """
    kind = row.get("kind")
    labels = ";".join(f"{k}={v}" for k, v in sorted(dict(row.get("labels", {})).items()))
    if kind == "sample":
        return [kind, row["name"], labels, row["time"], row["value"], "", "", "", "", ""]
    if kind == "counter":
        return [kind, row["name"], labels, "", row["value"], "", "", "", "", ""]
    if kind == "histogram":
        return [
            kind,
            row["name"],
            labels,
            "",
            row.get("mean", 0.0),
            row.get("count", 0),
            row.get("mean", 0.0),
            row.get("p50", 0.0),
            row.get("p95", 0.0),
            row.get("max", 0.0),
        ]
    return None


def export_csv(rows: Iterable[Dict[str, object]], out: TextIO) -> Tuple[int, int]:
    """Write flat telemetry rows as CSV (see :data:`CSV_FIELDS`).

    Samples keep their time/value; counters their total; histograms carry
    count/mean/p50/p95/max distribution columns.  Span rows (nested event
    payloads) do not fit a flat table and are skipped — but counted.

    Returns:
        ``(written, skipped)`` — data rows written vs. rows skipped.
    """
    writer = csv.writer(out)
    writer.writerow(CSV_FIELDS)
    written = 0
    skipped = 0
    for row in rows:
        record = csv_record(row)
        if record is None:
            skipped += 1
            continue
        writer.writerow(record)
        written += 1
    return written, skipped


def summarize_telemetry(
    registry: MetricsRegistry,
    sampler: Optional[TelemetrySampler] = None,
    spans: Optional[Sequence[SessionSpan]] = None,
    tracer: Optional[Tracer] = None,
    top: int = 8,
) -> str:
    """Operator-facing text summary of one run's telemetry."""
    lines: List[str] = ["Telemetry summary", "=" * 40]
    if not registry.enabled:
        lines.append("observability disabled (no-op registry)")
        return "\n".join(lines)

    families = registry.families()
    lines.append(
        f"instruments: {len(registry)} across {len(families)} families "
        f"({len(registry.gauges())} gauges, {len(registry.counters())} counters, "
        f"{len(registry.histograms())} histograms)"
    )
    if sampler is not None:
        lines.append(
            f"sampling: {sampler.sample_count} rounds every {sampler.period_s:g} s "
            f"of simulated time"
        )

    counters = [c for c in registry.counters() if c.value > 0]
    if counters:
        lines.append("counters (non-zero):")
        for counter in counters:
            label_text = ",".join(f"{k}={v}" for k, v in counter.labels)
            suffix = f"{{{label_text}}}" if label_text else ""
            lines.append(f"  {counter.name + suffix:<44} {counter.value:12g}")

    histograms = [h for h in registry.histograms() if h.count > 0]
    if histograms:
        lines.append("histograms:")
        for histogram in histograms:
            s = histogram.summary()
            lines.append(
                f"  {histogram.name:<34} n={s['count']:<6g} mean={s['mean']:.3f} "
                f"p95={s['p95']:.3f} max={s['max']:.3f}"
            )

    phases = [h for h in registry.histograms() if h.name.startswith("obs.phase.") and h.count > 0]
    if phases:
        lines.append("phase profile (wall-clock ms per call):")
        for histogram in sorted(phases, key=lambda h: -h.total):
            s = histogram.summary()
            name = histogram.name[len("obs.phase."):]
            lines.append(
                f"  {name:<24} n={s['count']:<7g} total={histogram.total:9.2f} ms  "
                f"mean={s['mean']:.4f} p95={s['p95']:.4f}"
            )
        for gauge in registry.gauges():
            if gauge.name.startswith("obs.memory."):
                lines.append(f"  {gauge.name:<24} {gauge.value:12g}")

    if sampler is not None:
        hottest = _hottest_series(sampler, "link.utilization", top)
        if hottest:
            lines.append("hottest links (peak utilisation):")
            for labels, peak, avg in hottest:
                lines.append(
                    f"  {labels.get('link', '?'):<24} peak {peak:7.2%}  "
                    f"time-avg {avg:7.2%}"
                )
        fullest = _hottest_series(sampler, "server.cache_fraction", top)
        if fullest:
            lines.append("fullest caches (peak occupancy):")
            for labels, peak, avg in fullest:
                lines.append(
                    f"  {labels.get('server', '?'):<24} peak {peak:7.2%}  "
                    f"time-avg {avg:7.2%}"
                )

    if spans:
        finished = [s for s in spans if not s.open]
        switches = sum(s.switch_count for s in spans)
        decisions = sum(s.decision_count for s in spans)
        lines.append(
            f"spans: {len(spans)} sessions ({len(finished)} finished), "
            f"{decisions} VRA decisions, {switches} switches"
        )
    if tracer is not None and tracer.enabled:
        lines.append(
            f"trace: {len(tracer)} events in {len(tracer.categories())} "
            f"categories, {tracer.dropped_count} dropped by capacity bound"
        )
    return "\n".join(lines)


def _hottest_series(sampler: TelemetrySampler, family: str, top: int):
    """(labels, peak, time-average) of a family's series, hottest first."""
    ranked = []
    for labels, series in sampler.series_for(family):
        if len(series) == 0:
            continue
        ranked.append((labels, series.maximum(), series.time_average()))
    ranked.sort(key=lambda row: (-row[1], sorted(row[0].items())))
    return ranked[:top]
