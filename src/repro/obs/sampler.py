"""Sim-time telemetry sampling.

The :class:`TelemetrySampler` is a periodic simulator task (the same
primitive as the SNMP statistics modules) that snapshots every gauge —
and, optionally, every counter — registered in a
:class:`~repro.obs.registry.MetricsRegistry` into ring-buffered
:class:`~repro.metrics.timeseries.TimeSeries`, one per instrument.

Sampling on the simulated clock keeps runs deterministic: the timeline a
run exports depends only on the seed and schedule, never on wall-clock
speed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.metrics.timeseries import TimeSeries
from repro.obs.registry import Instrument, LabelSet, MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTask

#: Default sampling period: one minute of simulated time, the same order
#: as the paper's SNMP statistics period.
DEFAULT_SAMPLE_PERIOD_S = 60.0

#: Default ring bound per series: a full simulated day at the default
#: period, which keeps even week-long soak runs bounded.
DEFAULT_SERIES_CAPACITY = 1440

#: A series is keyed by its instrument's (family name, frozen labels).
SeriesKey = Tuple[str, LabelSet]

#: Spill callback signature: (family name, labels, dropped times, values).
SpillCallback = Callable[[str, Dict[str, str], List[float], List[float]], None]


class TelemetrySampler:
    """Periodically snapshots registry instruments into time series.

    Args:
        sim: The simulation engine driving the period.
        registry: The instrument catalog to sample.  A disabled registry
            yields no series (and :meth:`start` is then a no-op).
        period_s: Simulated seconds between samples.
        capacity: Ring bound per series (oldest samples dropped first).
        sample_counters: Also record cumulative counter values each
            round, giving rate-over-time views of e.g. VRA decisions.
    """

    def __init__(
        self,
        sim: Simulator,
        registry: MetricsRegistry,
        period_s: float = DEFAULT_SAMPLE_PERIOD_S,
        capacity: int = DEFAULT_SERIES_CAPACITY,
        sample_counters: bool = True,
    ):
        if not (period_s > 0.0):
            raise ReproError(f"sample period must be positive, got {period_s!r}")
        self._sim = sim
        self._registry = registry
        self._capacity = capacity
        self._sample_counters = sample_counters
        self._series: Dict[SeriesKey, TimeSeries] = {}
        self._spill: Optional[SpillCallback] = None
        self._task = PeriodicTask(sim, period_s, self.sample, name="telemetry")

    @property
    def period_s(self) -> float:
        """Sampling period in simulated seconds."""
        return self._task.period

    @property
    def sample_count(self) -> int:
        """Sampling rounds taken so far."""
        return self._task.fire_count

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Take one immediate sample and begin periodic sampling."""
        if not self._registry.enabled:
            return
        if not self._task.running:
            self.sample()
            self._task.start()

    def stop(self) -> None:
        """Stop periodic sampling (recorded series are kept)."""
        if self._task.running:
            self._task.stop()

    def set_spill(self, callback: Optional[SpillCallback]) -> None:
        """Route ring overflow to ``callback`` instead of discarding it.

        The callback receives ``(family, labels, times, values)`` for every
        batch of samples the capacity bound is about to evict — for every
        existing series and every series created later.  Pass None to
        restore the default drop-oldest behaviour.
        """
        self._spill = callback
        for (name, labels), series in self._series.items():
            series.on_drop = self._spill_hook(name, labels) if callback else None

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def sample(self) -> None:
        """Snapshot every gauge (and counter) into its series, at sim-now."""
        now = self._sim.now
        for gauge in self._registry.gauges():
            self._series_for(gauge).record(now, gauge.value)
        if self._sample_counters:
            for counter in self._registry.counters():
                self._series_for(counter).record(now, counter.value)

    def _series_for(self, instrument: Instrument) -> TimeSeries:
        key = (instrument.name, instrument.labels)
        series = self._series.get(key)
        if series is None:
            label_text = ",".join(f"{k}={v}" for k, v in instrument.labels)
            series = TimeSeries(
                name=f"{instrument.name}{{{label_text}}}" if label_text else instrument.name,
                capacity=self._capacity,
            )
            if self._spill is not None:
                series.on_drop = self._spill_hook(key[0], key[1])
            self._series[key] = series
        return series

    def _spill_hook(self, name: str, labels: LabelSet):
        label_dict = dict(labels)

        def hook(times: List[float], values: List[float]) -> None:
            if self._spill is not None:
                self._spill(name, label_dict, times, values)

        return hook

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def series(self) -> Dict[SeriesKey, TimeSeries]:
        """Every recorded series, keyed by (family name, frozen labels)."""
        return dict(self._series)

    def resident_samples(self) -> int:
        """Samples currently held in rings (the sampler's live footprint)."""
        return sum(len(series) for series in self._series.values())

    def series_for(self, name: str) -> List[Tuple[Dict[str, str], TimeSeries]]:
        """All series of one family as (labels, series) pairs, sorted."""
        found = [
            (dict(labels), series)
            for (family, labels), series in self._series.items()
            if family == name
        ]
        return sorted(found, key=lambda pair: tuple(sorted(pair[0].items())))

    def families(self) -> List[str]:
        """Distinct family names with at least one recorded series."""
        return sorted({family for family, _ in self._series})

    def get(self, name: str, labels: Optional[Dict[str, str]] = None) -> Optional[TimeSeries]:
        """One series by family name and exact labels, or None."""
        frozen: LabelSet = tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))
        return self._series.get((name, frozen))
