"""Unified telemetry layer.

Three cooperating pieces turn a service run into measurable telemetry:

* :mod:`repro.obs.registry` — a metrics registry handing out Counter /
  Gauge / Histogram instruments, labelled by subsystem.  A disabled
  registry returns shared no-op instruments, so instrumented hot paths
  cost one dynamic dispatch when observability is off (benchmarked in
  ``benchmarks/test_bench_obs_overhead.py``).
* :mod:`repro.obs.sampler` — a periodic simulator process snapshotting
  every registered gauge into ring-buffered
  :class:`~repro.metrics.timeseries.TimeSeries`.
* :mod:`repro.obs.spans` — per-request session spans recording the VRA
  decision (latency + routing epoch), per-cluster deliveries and
  mid-stream switches, sinking into the structured
  :class:`~repro.sim.trace.Tracer`.

:mod:`repro.obs.export` serialises all of it to JSONL/CSV for the
``python -m repro obs`` CLI subcommand.
"""

from importlib import import_module
from typing import TYPE_CHECKING

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
)
from repro.obs.spans import SessionSpan, SpanEvent

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.obs.export import (
        export_csv,
        export_jsonl,
        summarize_telemetry,
        telemetry_rows,
    )
    from repro.obs.phase import NO_PHASE_TIMER, PhaseProfiler, PhaseTimer
    from repro.obs.sampler import TelemetrySampler
    from repro.obs.sink import (
        CsvTelemetrySink,
        JsonlTelemetrySink,
        TelemetrySink,
        open_sink,
    )
    from repro.obs.stream import StreamingTelemetry, run_manifest

# The sampler (and through it the export module) depends on
# repro.metrics, whose package init reaches back into repro.core — a
# cycle if resolved while core.vra is importing repro.obs.registry.
# PEP 562 lazy attributes break the cycle: the heavy submodules load on
# first attribute access, after the core package finished initialising.
_LAZY = {
    "TelemetrySampler": "repro.obs.sampler",
    "export_csv": "repro.obs.export",
    "export_jsonl": "repro.obs.export",
    "summarize_telemetry": "repro.obs.export",
    "telemetry_rows": "repro.obs.export",
    "NO_PHASE_TIMER": "repro.obs.phase",
    "PhaseProfiler": "repro.obs.phase",
    "PhaseTimer": "repro.obs.phase",
    "CsvTelemetrySink": "repro.obs.sink",
    "JsonlTelemetrySink": "repro.obs.sink",
    "TelemetrySink": "repro.obs.sink",
    "open_sink": "repro.obs.sink",
    "StreamingTelemetry": "repro.obs.stream",
    "run_manifest": "repro.obs.stream",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))


__all__ = [
    "Counter",
    "CsvTelemetrySink",
    "Gauge",
    "Histogram",
    "JsonlTelemetrySink",
    "MetricsRegistry",
    "NO_PHASE_TIMER",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "PhaseProfiler",
    "PhaseTimer",
    "SessionSpan",
    "SpanEvent",
    "StreamingTelemetry",
    "TelemetrySampler",
    "TelemetrySink",
    "export_csv",
    "export_jsonl",
    "open_sink",
    "run_manifest",
    "summarize_telemetry",
    "telemetry_rows",
]
