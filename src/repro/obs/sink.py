"""Telemetry sinks: incremental JSONL/CSV writers with rotation.

A :class:`TelemetrySink` accepts telemetry rows one at a time — the same
dicts :func:`repro.obs.export.telemetry_rows` yields — and writes them
behind the run as it happens, so memory stays bounded by what is still
*live* (open spans, sampler rings) instead of everything ever recorded.

Every sink frames its output with two control rows that do not count
toward the data-row totals:

``manifest``
    Written first (see :func:`repro.obs.stream.run_manifest`); repeated
    at the head of every rotated part so each file is self-describing.
``footer``
    Written last: totals, wall time, peak RSS.

Sinks accept either a path (the sink owns and closes the handle, and
``max_rows_per_file`` rotation is available: parts are named ``path``,
``path.1``, ``path.2``, ...) or an open text handle (the caller owns it;
no rotation).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

from repro.errors import ReproError
from repro.obs.export import CSV_FIELDS, csv_record

#: Where a sink writes: a filesystem path or an open text handle.
SinkTarget = Union[str, Path, IO[str]]


class TelemetrySink:
    """Base class: counting, rotation and the manifest/footer frame.

    Subclasses implement ``_emit_header`` (once per part),
    ``_emit_control`` (manifest/footer rows) and ``_emit_data`` (one
    telemetry row; return False to skip it).

    Attributes:
        written: Data rows written (all parts).
        skipped: Data rows the format could not represent.
        by_kind: Written-row counts per ``kind`` discriminator.
        part_paths: Paths written so far (empty for handle targets).
    """

    #: newline= argument used when the sink opens its own files.
    _newline: Optional[str] = None

    def __init__(self, target: SinkTarget, max_rows_per_file: Optional[int] = None):
        if max_rows_per_file is not None and max_rows_per_file < 1:
            raise ReproError(
                f"max_rows_per_file must be >= 1, got {max_rows_per_file!r}"
            )
        self._owns_handle = isinstance(target, (str, Path))
        if self._owns_handle:
            base = Path(target)
            self._handle: IO[str] = open(base, "w", encoding="utf-8", newline=self._newline)
            self.part_paths: List[Path] = [base]
            self.max_rows_per_file = max_rows_per_file
        else:
            if max_rows_per_file is not None:
                raise ReproError("rotation requires a path target, not an open handle")
            self._handle = target
            self.part_paths = []
            self.max_rows_per_file = None
        self.written = 0
        self.skipped = 0
        self.by_kind: Dict[str, int] = {}
        self.closed = False
        self._manifest: Optional[Dict[str, object]] = None
        self._rows_in_part = 0
        self._emit_header()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def write_manifest(self, manifest: Dict[str, object]) -> None:
        """Write the run-manifest control row (kept for rotated parts)."""
        self._manifest = {"kind": "manifest", **manifest}
        self._emit_control(self._manifest)

    def write(self, row: Dict[str, object]) -> None:
        """Write one telemetry row, rotating first if the part is full."""
        if self.max_rows_per_file is not None and self._rows_in_part >= self.max_rows_per_file:
            self._rotate()
        if self._emit_data(row):
            self.written += 1
            self._rows_in_part += 1
            kind = str(row.get("kind", "?"))
            self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        else:
            self.skipped += 1

    def write_footer(self, footer: Dict[str, object]) -> None:
        """Write the run-footer control row (into the last part)."""
        self._emit_control({"kind": "footer", **footer})

    def flush(self) -> None:
        """Flush the underlying handle."""
        self._handle.flush()

    def close(self) -> None:
        """Close the sink (owned handles are closed, borrowed ones flushed)."""
        if self.closed:
            return
        if self._owns_handle:
            self._handle.close()
        else:
            self._handle.flush()
        self.closed = True

    # ------------------------------------------------------------------ #
    # rotation
    # ------------------------------------------------------------------ #
    def _rotate(self) -> None:
        self._handle.close()
        next_path = Path(f"{self.part_paths[0]}.{len(self.part_paths)}")
        self.part_paths.append(next_path)
        self._handle = open(next_path, "w", encoding="utf-8", newline=self._newline)
        self._rows_in_part = 0
        self._emit_header()
        if self._manifest is not None:
            self._emit_control(self._manifest)

    # ------------------------------------------------------------------ #
    # format hooks
    # ------------------------------------------------------------------ #
    def _emit_header(self) -> None:
        """Per-part prologue (CSV header row); default none."""

    def _emit_control(self, row: Dict[str, object]) -> None:
        raise NotImplementedError

    def _emit_data(self, row: Dict[str, object]) -> bool:
        raise NotImplementedError


class JsonlTelemetrySink(TelemetrySink):
    """One JSON object per line; every row kind is representable."""

    def _emit_control(self, row: Dict[str, object]) -> None:
        self._handle.write(json.dumps(row, sort_keys=True))
        self._handle.write("\n")

    def _emit_data(self, row: Dict[str, object]) -> bool:
        self._handle.write(json.dumps(row, sort_keys=True))
        self._handle.write("\n")
        return True


class CsvTelemetrySink(TelemetrySink):
    """Flat CSV rows (:data:`~repro.obs.export.CSV_FIELDS` schema).

    Control rows are written as ``#``-prefixed JSON comment lines so the
    manifest and footer survive in-band without breaking the table; span
    rows do not fit the flat schema and are skipped (counted).
    """

    _newline = ""

    def _emit_header(self) -> None:
        self._writer = csv.writer(self._handle)
        self._writer.writerow(CSV_FIELDS)

    def _emit_control(self, row: Dict[str, object]) -> None:
        self._handle.write("# " + json.dumps(row, sort_keys=True) + "\r\n")

    def _emit_data(self, row: Dict[str, object]) -> bool:
        record = csv_record(row)
        if record is None:
            return False
        self._writer.writerow(record)
        return True


def open_sink(
    target: SinkTarget,
    fmt: str = "jsonl",
    max_rows_per_file: Optional[int] = None,
) -> TelemetrySink:
    """Build the sink for a format name (``"jsonl"`` or ``"csv"``)."""
    if fmt == "jsonl":
        return JsonlTelemetrySink(target, max_rows_per_file=max_rows_per_file)
    if fmt == "csv":
        return CsvTelemetrySink(target, max_rows_per_file=max_rows_per_file)
    raise ReproError(f"unknown telemetry sink format {fmt!r} (jsonl or csv)")
