"""Phase profiler: wall-clock histograms and memory gauges per subsystem.

The profiler hands out :class:`PhaseTimer` objects, one per named phase
(VRA decide, cache sync, admission drain, fault injection, SNMP
collection).  Each timer feeds an ``obs.phase.<name>_ms`` histogram in
the run's :class:`~repro.obs.registry.MetricsRegistry`; a disabled
profiler hands out the shared :data:`NO_PHASE_TIMER` singleton so the
instrumented hot paths never branch.

Enabling the profiler also registers two memory gauges sampled on the
sim clock by the telemetry sampler:

``obs.memory.peak_rss_kb``
    Peak resident set size of the process (KiB, via ``getrusage``).
``obs.memory.allocated_blocks``
    Live interpreter-allocated memory blocks
    (``sys.getallocatedblocks()``) — a proxy for live-object growth.

Phase timings are wall-clock and therefore *not* replay-deterministic;
the knob (``ServiceConfig.phase_profiling``) defaults off, and seeded
equivalence tests keep it off.
"""

from __future__ import annotations

import sys
import time
from typing import Dict

from repro.obs.registry import Histogram, MetricsRegistry, NULL_HISTOGRAM

try:  # pragma: no cover - always present on POSIX
    import resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    resource = None  # type: ignore[assignment]

#: The phases the service instruments (histogram family is
#: ``obs.phase.<phase>_ms``).
PHASES = ("vra_decide", "cache_sync", "admission_drain", "fault_inject", "snmp_collect")


def peak_rss_kb() -> float:
    """Peak resident set size of this process in KiB (0.0 if unknown)."""
    if resource is None:
        return 0.0
    peak = float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":  # ru_maxrss is bytes on macOS, KiB on Linux
        peak /= 1024.0
    return peak


def allocated_blocks() -> float:
    """Live interpreter-allocated memory blocks."""
    return float(sys.getallocatedblocks())


class PhaseTimer:
    """Hot-path wall-clock timer feeding one ``obs.phase.*`` histogram.

    Usage is explicit start/stop so instrumented code can wrap early
    returns with ``try/finally`` without allocating a context manager
    per call::

        t0 = timer.start()
        try:
            ...
        finally:
            timer.stop(t0)
    """

    __slots__ = ("_histogram",)

    enabled = True

    def __init__(self, histogram: Histogram):
        self._histogram = histogram

    def start(self) -> float:
        """Begin timing; returns the token to pass to :meth:`stop`."""
        return time.perf_counter()

    def stop(self, started: float) -> None:
        """Record the elapsed milliseconds since ``started``."""
        self._histogram.observe((time.perf_counter() - started) * 1000.0)


class _NullPhaseTimer(PhaseTimer):
    """Shared do-nothing timer handed out by disabled profilers."""

    __slots__ = ()

    enabled = False

    def __init__(self):
        super().__init__(NULL_HISTOGRAM)

    def start(self) -> float:  # noqa: D102 - hot no-op
        return 0.0

    def stop(self, started: float) -> None:  # noqa: D102 - hot no-op
        pass


#: The singleton every disabled profiler hands out.
NO_PHASE_TIMER = _NullPhaseTimer()


class PhaseProfiler:
    """Get-or-create factory for phase timers plus memory gauges.

    Args:
        registry: The run's instrument registry.  A disabled registry
            forces a disabled profiler regardless of ``enabled``.
        enabled: When False every :meth:`timer` call returns
            :data:`NO_PHASE_TIMER` and no gauges are registered.
    """

    def __init__(self, registry: MetricsRegistry, enabled: bool = True):
        self.enabled = bool(enabled) and registry.enabled
        self._registry = registry
        self._timers: Dict[str, PhaseTimer] = {}
        if self.enabled:
            registry.gauge(
                "obs.memory.peak_rss_kb",
                subsystem="obs",
                description="peak resident set size of the process (KiB)",
                callback=peak_rss_kb,
            )
            registry.gauge(
                "obs.memory.allocated_blocks",
                subsystem="obs",
                description="live interpreter-allocated memory blocks",
                callback=allocated_blocks,
            )

    def timer(self, phase: str) -> PhaseTimer:
        """The timer for one phase (the shared no-op when disabled)."""
        if not self.enabled:
            return NO_PHASE_TIMER
        timer = self._timers.get(phase)
        if timer is None:
            histogram = self._registry.histogram(
                f"obs.phase.{phase}_ms",
                subsystem="obs",
                description=f"wall-clock milliseconds per {phase} phase call",
            )
            timer = PhaseTimer(histogram)
            self._timers[phase] = timer
        return timer
