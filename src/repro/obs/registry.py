"""Metrics registry: Counter / Gauge / Histogram instruments.

Instruments are identified by a *family* name (``"link.utilization"``)
plus a frozen label set (``link="Athens-Patra"``); asking the registry
for the same (name, labels) pair twice returns the same instrument, so
callers can resolve instruments eagerly and keep only the hot-path call
(``counter.inc()``, ``histogram.observe(x)``) in loops.

A registry constructed with ``enabled=False`` hands out shared no-op
instruments and records nothing; the disabled hot path is a single
method call on a singleton (see ``benchmarks/test_bench_obs_overhead.py``
for the measured cost).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError

#: Canonical immutable label representation: sorted (key, value) pairs.
LabelSet = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Optional[Dict[str, str]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Instrument:
    """Common identity of every instrument.

    Attributes:
        name: Family name, dotted by convention (``"vra.decisions"``).
        subsystem: Owning subsystem label (``"network"``, ``"server"``).
        labels: Frozen (key, value) pairs distinguishing this instrument
            within its family.
        description: One-line human description for catalogs.
    """

    __slots__ = ("name", "subsystem", "labels", "description")

    kind = "instrument"

    def __init__(
        self,
        name: str,
        subsystem: str = "",
        labels: LabelSet = (),
        description: str = "",
    ):
        self.name = name
        self.subsystem = subsystem
        self.labels = labels
        self.description = description

    def label_dict(self) -> Dict[str, str]:
        """Labels as a plain dict (for export rows)."""
        return dict(self.labels)

    def __repr__(self) -> str:
        label_text = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{type(self).__name__}({self.name}{{{label_text}}})"


class Counter(Instrument):
    """Monotonically increasing count."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, name: str, subsystem: str = "", labels: LabelSet = (), description: str = ""):
        super().__init__(name, subsystem, labels, description)
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current total."""
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0.0:
            raise ReproError(f"counter {self.name!r} cannot decrease (inc {amount!r})")
        self._value += amount


class Gauge(Instrument):
    """Point-in-time value, either set directly or observed via callback."""

    __slots__ = ("_value", "_callback")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        subsystem: str = "",
        labels: LabelSet = (),
        description: str = "",
        callback: Optional[Callable[[], float]] = None,
    ):
        super().__init__(name, subsystem, labels, description)
        self._value = 0.0
        self._callback = callback

    @property
    def value(self) -> float:
        """Current value (evaluates the callback for observable gauges)."""
        if self._callback is not None:
            return float(self._callback())
        return self._value

    def set(self, value: float) -> None:
        """Set the current value (direct gauges only).

        Raises:
            ReproError: If the gauge is callback-backed.
        """
        if self._callback is not None:
            raise ReproError(f"gauge {self.name!r} is callback-backed; cannot set()")
        self._value = float(value)


class Histogram(Instrument):
    """Streaming distribution: count/sum/min/max plus a sample ring.

    The ring keeps the most recent ``ring_size`` observations so
    percentile summaries stay cheap and bounded on long runs.
    """

    __slots__ = ("count", "total", "min", "max", "_ring", "_ring_size", "_ring_pos", "_sorted")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        subsystem: str = "",
        labels: LabelSet = (),
        description: str = "",
        ring_size: int = 1024,
    ):
        super().__init__(name, subsystem, labels, description)
        if ring_size < 1:
            raise ReproError(f"histogram ring size must be >= 1, got {ring_size}")
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._ring: List[float] = []
        self._ring_size = ring_size
        self._ring_pos = 0
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._ring) < self._ring_size:
            self._ring.append(value)
        else:
            self._ring[self._ring_pos] = value
            self._ring_pos = (self._ring_pos + 1) % self._ring_size
        self._sorted = None

    @property
    def mean(self) -> float:
        """Mean over every observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile over the retained ring (0.0 when empty).

        The sorted ring is cached between observations, so rendering a
        summary with several percentiles sorts at most once per
        ``observe()``.
        """
        if not self._ring:
            return 0.0
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self._ring)
        rank = max(int(len(ordered) * p / 100.0 + 0.999999) - 1, 0)
        return ordered[min(rank, len(ordered) - 1)]

    def summary(self) -> Dict[str, float]:
        """count / mean / min / max / p50 / p95 snapshot."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p95": 0.0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
        }


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - hot no-op
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 - hot no-op
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 - hot no-op
        pass


#: The singletons every disabled registry hands out.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Get-or-create factory and catalog for instruments.

    Args:
        enabled: A disabled registry returns the shared no-op singletons
            (:data:`NULL_COUNTER` and friends) and registers nothing —
            instrumented code needs no ``if`` guards on its hot paths.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, str, LabelSet], Instrument] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    # ------------------------------------------------------------------ #
    # factories
    # ------------------------------------------------------------------ #
    def counter(
        self,
        name: str,
        subsystem: str = "",
        labels: Optional[Dict[str, str]] = None,
        description: str = "",
    ) -> Counter:
        """Get or create a counter (the no-op singleton when disabled)."""
        if not self.enabled:
            return NULL_COUNTER
        return self._get_or_create(
            Counter, name, subsystem, _freeze_labels(labels), description
        )

    def gauge(
        self,
        name: str,
        subsystem: str = "",
        labels: Optional[Dict[str, str]] = None,
        description: str = "",
        callback: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        """Get or create a gauge; ``callback`` makes it observable."""
        if not self.enabled:
            return NULL_GAUGE
        key = ("gauge", name, _freeze_labels(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            return existing  # type: ignore[return-value]
        gauge = Gauge(name, subsystem, key[2], description, callback=callback)
        self._instruments[key] = gauge
        return gauge

    def histogram(
        self,
        name: str,
        subsystem: str = "",
        labels: Optional[Dict[str, str]] = None,
        description: str = "",
    ) -> Histogram:
        """Get or create a histogram (the no-op singleton when disabled)."""
        if not self.enabled:
            return NULL_HISTOGRAM
        return self._get_or_create(
            Histogram, name, subsystem, _freeze_labels(labels), description
        )

    def _get_or_create(self, cls, name: str, subsystem: str, labels: LabelSet, description: str):
        key = (cls.kind, name, labels)
        existing = self._instruments.get(key)
        if existing is not None:
            return existing
        instrument = cls(name, subsystem, labels, description)
        self._instruments[key] = instrument
        return instrument

    # ------------------------------------------------------------------ #
    # catalog
    # ------------------------------------------------------------------ #
    def instruments(self, kind: Optional[str] = None) -> List[Instrument]:
        """Every registered instrument, optionally filtered by kind."""
        values: Iterable[Instrument] = self._instruments.values()
        if kind is not None:
            values = (i for i in values if i.kind == kind)
        return sorted(values, key=lambda i: (i.name, i.labels))

    def counters(self) -> List[Counter]:
        """Registered counters, sorted by (name, labels)."""
        return self.instruments("counter")  # type: ignore[return-value]

    def gauges(self) -> List[Gauge]:
        """Registered gauges, sorted by (name, labels)."""
        return self.instruments("gauge")  # type: ignore[return-value]

    def histograms(self) -> List[Histogram]:
        """Registered histograms, sorted by (name, labels)."""
        return self.instruments("histogram")  # type: ignore[return-value]

    def families(self) -> List[str]:
        """Distinct instrument family names, sorted."""
        return sorted({name for (_, name, _) in self._instruments})

    def find(self, name: str) -> List[Instrument]:
        """Every instrument of one family (any kind), sorted by labels."""
        return [i for i in self.instruments() if i.name == name]
