"""Write-behind streaming of one run's telemetry.

:class:`StreamingTelemetry` couples a running
:class:`~repro.core.service.VoDService` to a
:class:`~repro.obs.sink.TelemetrySink`:

- the run manifest is written first (config hash, seed, topology, cache
  knobs, code version) so every artifact is self-describing;
- session spans are flushed the moment they close (via the service's
  ``on_span_finished`` hook) and dropped from ``service.spans``;
- sampler rings spill evicted samples to the sink instead of discarding
  them (via :meth:`TelemetrySampler.set_spill`);
- :meth:`finish` drains whatever is still live (ring contents, counter
  totals, histogram summaries, still-open spans) and writes the footer
  (row totals, wall time, peak RSS), closing the sink.

Streamed output is row-for-row content-identical to the buffered
:func:`~repro.obs.export.telemetry_rows` export of the same run (same
rows; spans ordered by close time instead of grouped at the end), while
memory stays O(active sessions + ring capacity).

Constructed with ``stream=False`` the same class produces the identical
artifact format from a fully buffered run: manifest, one-shot drain,
footer.  ``keep_spans=True`` flushes spans without removing them from
``service.spans`` — the mode the equivalence property tests use to
compare streamed output against the buffered rows of the *same* run.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import asdict
from typing import Dict, List, Optional

from repro.obs.export import telemetry_rows
from repro.obs.phase import peak_rss_kb
from repro.obs.sink import TelemetrySink
from repro.obs.spans import SessionSpan

#: Manifest layout version; bump on incompatible schema changes.
MANIFEST_SCHEMA = 1


def config_hash(config) -> str:
    """sha256 over the canonical JSON of a :class:`ServiceConfig`."""
    canonical = json.dumps(asdict(config), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def topology_fingerprint(topology) -> Dict[str, object]:
    """Node/link counts plus a sha256 over the wiring and capacities."""
    shape = {
        "nodes": sorted(topology.node_uids()),
        "links": sorted(
            (link.a_uid, link.b_uid, link.capacity_mbps) for link in topology.links()
        ),
    }
    digest = hashlib.sha256(
        json.dumps(shape, sort_keys=True).encode("utf-8")
    ).hexdigest()
    return {
        "name": topology.name,
        "node_count": topology.node_count,
        "link_count": topology.link_count,
        "hash": digest,
    }


def run_manifest(
    service,
    seed: Optional[int] = None,
    label: Optional[str] = None,
) -> Dict[str, object]:
    """The self-describing header row framing one run's telemetry."""
    import repro

    config = service.config
    return {
        "schema": MANIFEST_SCHEMA,
        "code_version": repro.__version__,
        "label": label,
        "seed": seed,
        "config_hash": config_hash(config),
        "config": asdict(config),
        "topology": topology_fingerprint(service.topology),
        "knobs": {
            "routing_cache_size": config.routing_cache_size,
            "routing_delta_updates": config.routing_delta_updates,
            "decision_cache_size": config.decision_cache_size,
            "admission_queue_capacity": config.admission_queue_capacity,
            "phase_profiling": getattr(config, "phase_profiling", False),
            "telemetry_period_s": config.telemetry_period_s,
            "telemetry_capacity": config.telemetry_capacity,
        },
    }


class StreamingTelemetry:
    """Drains one service's telemetry into a sink, behind the run.

    Args:
        service: The (observability-enabled) service under measurement.
        sink: Where rows go; closed by :meth:`finish`.
        seed: Recorded in the manifest (the run's RNG seed, if any).
        label: Free-form run label recorded in the manifest.
        stream: When True (default) spans flush on close and sampler
            rings spill on overflow; when False nothing is hooked and
            :meth:`finish` performs one buffered drain — same artifact,
            O(total sessions) memory.
        keep_spans: Flush spans without removing them from
            ``service.spans`` (test mode: lets the same run be exported
            both streamed and buffered for equivalence checks).
    """

    def __init__(
        self,
        service,
        sink: TelemetrySink,
        *,
        seed: Optional[int] = None,
        label: Optional[str] = None,
        stream: bool = True,
        keep_spans: bool = False,
    ):
        self._service = service
        self._sink = sink
        self._seed = seed
        self._label = label
        self._stream = stream
        self._keep_spans = keep_spans
        self._flushed_ids: set = set()
        self._prev_span_hook = None
        self._wall_start: Optional[float] = None
        self._started = False
        self._finished = False
        self.spans_flushed = 0
        self.samples_spilled = 0
        self.peak_resident_rows = 0
        self.footer: Optional[Dict[str, object]] = None

    @property
    def sink(self) -> TelemetrySink:
        """The sink this run streams into."""
        return self._sink

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Write the manifest and (in streaming mode) install the hooks."""
        if self._started:
            return
        self._started = True
        self._wall_start = time.perf_counter()
        self._sink.write_manifest(
            run_manifest(self._service, seed=self._seed, label=self._label)
        )
        if self._stream:
            self._prev_span_hook = self._service.on_span_finished
            self._service.on_span_finished = self._span_finished
            if self._service.telemetry is not None:
                self._service.telemetry.set_spill(self._spill)

    def finish(self) -> Dict[str, object]:
        """Drain everything still live, write the footer, close the sink."""
        if self._finished:
            return self.footer or {}
        if not self._started:
            self.start()
        self._finished = True
        service = self._service
        self._note_resident()
        for row in telemetry_rows(service.obs, service.telemetry, self._remaining_spans()):
            self._sink.write(row)
        self.footer = self._build_footer()
        self._sink.write_footer(self.footer)
        self._sink.close()
        if self._stream:
            service.on_span_finished = self._prev_span_hook
            if service.telemetry is not None:
                service.telemetry.set_spill(None)
        return self.footer

    # ------------------------------------------------------------------ #
    # hooks
    # ------------------------------------------------------------------ #
    def _span_finished(self, span: SessionSpan) -> None:
        self._sink.write({"kind": "span", **span.to_dict()})
        self.spans_flushed += 1
        if self._keep_spans:
            self._flushed_ids.add(span.request_id)
        else:
            try:
                self._service.spans.remove(span)
            except ValueError:
                pass
        self._note_resident()
        if self._prev_span_hook is not None:
            self._prev_span_hook(span)

    def _spill(
        self,
        name: str,
        labels: Dict[str, str],
        times: List[float],
        values: List[float],
    ) -> None:
        for t, v in zip(times, values):
            self._sink.write(
                {"kind": "sample", "name": name, "labels": labels, "time": t, "value": v}
            )
        self.samples_spilled += len(times)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _remaining_spans(self) -> List[SessionSpan]:
        spans = self._service.spans
        if self._keep_spans:
            return [s for s in spans if s.request_id not in self._flushed_ids]
        return list(spans)

    def _note_resident(self) -> None:
        resident = len(self._service.spans)
        telemetry = self._service.telemetry
        if telemetry is not None:
            resident += telemetry.resident_samples()
        if resident > self.peak_resident_rows:
            self.peak_resident_rows = resident

    def _build_footer(self) -> Dict[str, object]:
        service = self._service
        sink = self._sink
        wall = time.perf_counter() - (self._wall_start or time.perf_counter())
        return {
            "rows_written": sink.written,
            "rows_skipped": sink.skipped,
            "rows_by_kind": dict(sorted(sink.by_kind.items())),
            "spans_flushed": self.spans_flushed,
            "samples_spilled": self.samples_spilled,
            "peak_resident_rows": self.peak_resident_rows,
            "sim_time_end": service.sim.now,
            "events_fired": service.sim.events_fired,
            "wall_time_s": wall,
            "peak_rss_kb": peak_rss_kb(),
        }
