"""Append-only time series with integration helpers.

Used to record link utilisation over a run: samples are (time, value)
pairs; :meth:`time_average` integrates the piecewise-constant signal, which
is the right mean for utilisation-style metrics.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.errors import ReproError


class TimeSeries:
    """(time, value) samples, times non-decreasing.

    Args:
        name: Label used in error messages and exports.
        capacity: Optional ring bound — keep at most this many samples,
            dropping the oldest first (the telemetry sampler uses this so
            long runs stay bounded).  None keeps everything.
        on_drop: Optional callback invoked with the (times, values) lists
            about to be evicted by the capacity bound, letting a streaming
            sink spill them instead of losing them.  Dropped samples are
            still counted in :attr:`dropped_count`.
    """

    def __init__(
        self,
        name: str = "",
        capacity: Optional[int] = None,
        on_drop: Optional[Callable[[List[float], List[float]], None]] = None,
    ):
        if capacity is not None and capacity < 1:
            raise ReproError(
                f"time series {name!r}: capacity must be >= 1, got {capacity!r}"
            )
        self.name = name
        self.capacity = capacity
        self.on_drop = on_drop
        self._times: List[float] = []
        self._values: List[float] = []
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._times)

    @property
    def dropped_count(self) -> int:
        """Samples discarded due to the capacity bound."""
        return self._dropped

    def record(self, time: float, value: float) -> None:
        """Append one sample.

        Raises:
            ReproError: If ``time`` precedes the previous sample.
        """
        if self._times and time < self._times[-1]:
            raise ReproError(
                f"time series {self.name!r}: sample at {time} precedes "
                f"previous sample at {self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))
        if self.capacity is not None and len(self._times) > self.capacity:
            overflow = len(self._times) - self.capacity
            if self.on_drop is not None:
                self.on_drop(self._times[:overflow], self._values[:overflow])
            del self._times[:overflow]
            del self._values[:overflow]
            self._dropped += overflow

    def samples(self) -> List[Tuple[float, float]]:
        """All samples as (time, value) pairs."""
        return list(zip(self._times, self._values))

    def values(self) -> List[float]:
        """Just the sample values."""
        return list(self._values)

    def last(self) -> Optional[Tuple[float, float]]:
        """The most recent sample, or None when empty."""
        if not self._times:
            return None
        return (self._times[-1], self._values[-1])

    def value_at(self, time: float) -> float:
        """Piecewise-constant (sample-and-hold) value at ``time``.

        Raises:
            ReproError: If the series is empty or ``time`` precedes the
                first sample.
        """
        if not self._times:
            raise ReproError(f"time series {self.name!r} is empty")
        if time < self._times[0]:
            raise ReproError(
                f"time {time} precedes first sample at {self._times[0]}"
            )
        # Linear scan from the end: queries usually ask near the present.
        for i in range(len(self._times) - 1, -1, -1):
            if self._times[i] <= time:
                return self._values[i]
        raise AssertionError("unreachable: first-sample check covers this")

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean of the piecewise-constant signal.

        Args:
            until: Horizon for the integral; defaults to the last sample
                time (a single-sample series returns that sample).

        Raises:
            ReproError: On an empty series or a horizon before the first
                sample.
        """
        if not self._times:
            raise ReproError(f"time series {self.name!r} is empty")
        horizon = self._times[-1] if until is None else until
        if horizon < self._times[0]:
            raise ReproError(
                f"horizon {horizon} precedes first sample at {self._times[0]}"
            )
        if horizon == self._times[0]:
            return self._values[0]
        area = 0.0
        for i in range(len(self._times)):
            start = self._times[i]
            end = self._times[i + 1] if i + 1 < len(self._times) else horizon
            end = min(end, horizon)
            if end > start:
                area += self._values[i] * (end - start)
            if end >= horizon:
                break
        return area / (horizon - self._times[0])

    def maximum(self) -> float:
        """Largest sample value.

        Raises:
            ReproError: On an empty series.
        """
        if not self._values:
            raise ReproError(f"time series {self.name!r} is empty")
        return max(self._values)
