"""Measurement utilities: session-level collectors, summary statistics and
time series used by the benchmark harness."""

from repro.metrics.analysis import RunAnalysis, analyze_sessions, render_analysis
from repro.metrics.collectors import SessionMetrics, summarize_sessions
from repro.metrics.stats import confidence_interval_95, mean, percentile, stddev
from repro.metrics.timeseries import TimeSeries

__all__ = [
    "RunAnalysis",
    "SessionMetrics",
    "TimeSeries",
    "analyze_sessions",
    "confidence_interval_95",
    "mean",
    "percentile",
    "render_analysis",
    "stddev",
    "summarize_sessions",
]
