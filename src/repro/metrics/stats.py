"""Small, dependency-free summary statistics.

Implemented directly (rather than via numpy) so property tests can verify
them against first principles and so the metrics layer stays importable in
minimal environments.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro.errors import ReproError


def _require_data(values: Sequence[float], what: str) -> None:
    if not values:
        raise ReproError(f"cannot compute {what} of an empty sequence")


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean.

    Raises:
        ReproError: On empty input.
    """
    _require_data(values, "mean")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator; 0 for a single value)."""
    _require_data(values, "stddev")
    if len(values) == 1:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100].

    Raises:
        ReproError: On empty input or out-of-range ``q``.
    """
    _require_data(values, "percentile")
    if not (0.0 <= q <= 100.0):
        raise ReproError(f"percentile must be in [0, 100], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Normal-approximation 95% confidence interval for the mean.

    Returns:
        (low, high); degenerate (m, m) for a single observation.
    """
    _require_data(values, "confidence interval")
    m = mean(values)
    if len(values) == 1:
        return (m, m)
    half_width = 1.96 * stddev(values) / math.sqrt(len(values))
    return (m - half_width, m + half_width)


def histogram(values: Sequence[float], bin_count: int) -> List[Tuple[float, int]]:
    """Equal-width histogram as (bin lower edge, count) pairs.

    Raises:
        ReproError: On empty input or non-positive bin count.
    """
    _require_data(values, "histogram")
    if bin_count < 1:
        raise ReproError(f"bin count must be >= 1, got {bin_count}")
    low, high = min(values), max(values)
    if low == high:
        return [(low, len(values))]
    width = (high - low) / bin_count
    counts = [0] * bin_count
    for v in values:
        index = min(int((v - low) / width), bin_count - 1)
        counts[index] += 1
    return [(low + i * width, counts[i]) for i in range(bin_count)]
