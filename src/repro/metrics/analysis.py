"""Post-run analysis over session records.

Turns a finished service run into the per-server, per-route and per-title
breakdowns an operator would ask for — which links carried the bytes,
which servers sourced the streams, which titles dominated demand — all
derived purely from :class:`~repro.core.session.SessionRecord` data so it
works on any run regardless of tracing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.session import SessionRecord
from repro.network.link import link_key


@dataclass(frozen=True)
class ServerLoadRow:
    """One server's sourcing totals.

    Attributes:
        server_uid: The source server.
        sessions: Sessions that fetched at least one cluster from it.
        clusters: Clusters it sourced.
        megabytes: Bytes it sourced, in MB.
    """

    server_uid: str
    sessions: int
    clusters: int
    megabytes: float


@dataclass(frozen=True)
class LinkLoadRow:
    """One link's VoD transport totals.

    Attributes:
        endpoints: Canonical (a, b) node-uid pair.
        clusters: Cluster transfers that crossed the link.
        megabytes: Bytes carried for the VoD service, in MB.
    """

    endpoints: Tuple[str, str]
    clusters: int
    megabytes: float


@dataclass
class RunAnalysis:
    """Aggregated view of a batch of sessions.

    Attributes:
        server_load: Per-source-server totals, heaviest first.
        link_load: Per-link transport totals, heaviest first.
        title_demand: title_id -> request count, most requested first.
        switch_histogram: switches-per-session -> session count.
    """

    server_load: List[ServerLoadRow] = field(default_factory=list)
    link_load: List[LinkLoadRow] = field(default_factory=list)
    title_demand: List[Tuple[str, int]] = field(default_factory=list)
    switch_histogram: Dict[int, int] = field(default_factory=dict)

    def busiest_link(self) -> Tuple[str, str]:
        """Endpoints of the link that carried the most VoD bytes.

        Raises:
            ValueError: If no cluster ever crossed a link.
        """
        if not self.link_load:
            raise ValueError("no network transport in this run")
        return self.link_load[0].endpoints

    def top_server(self) -> str:
        """The server that sourced the most bytes.

        Raises:
            ValueError: If nothing was served.
        """
        if not self.server_load:
            raise ValueError("no sessions in this run")
        return self.server_load[0].server_uid


def analyze_sessions(records: Sequence[SessionRecord]) -> RunAnalysis:
    """Build a :class:`RunAnalysis` from session records."""
    server_sessions: Dict[str, set] = {}
    server_clusters: Dict[str, int] = {}
    server_megabytes: Dict[str, float] = {}
    link_clusters: Dict[Tuple[str, str], int] = {}
    link_megabytes: Dict[Tuple[str, str], float] = {}
    title_counts: Dict[str, int] = {}
    switch_histogram: Dict[int, int] = {}

    for record in records:
        title_counts[record.request.title_id] = (
            title_counts.get(record.request.title_id, 0) + 1
        )
        if record.request.finished:
            switches = record.switch_count
            switch_histogram[switches] = switch_histogram.get(switches, 0) + 1
        for cluster in record.clusters:
            uid = cluster.server_uid
            server_sessions.setdefault(uid, set()).add(record.request.request_id)
            server_clusters[uid] = server_clusters.get(uid, 0) + 1
            server_megabytes[uid] = server_megabytes.get(uid, 0.0) + cluster.size_mb
            for a, b in zip(cluster.path_nodes, cluster.path_nodes[1:]):
                key = link_key(a, b)
                link_clusters[key] = link_clusters.get(key, 0) + 1
                link_megabytes[key] = link_megabytes.get(key, 0.0) + cluster.size_mb

    server_load = sorted(
        (
            ServerLoadRow(
                server_uid=uid,
                sessions=len(server_sessions[uid]),
                clusters=server_clusters[uid],
                megabytes=server_megabytes[uid],
            )
            for uid in server_clusters
        ),
        key=lambda row: (-row.megabytes, row.server_uid),
    )
    link_load = sorted(
        (
            LinkLoadRow(
                endpoints=key,
                clusters=link_clusters[key],
                megabytes=link_megabytes[key],
            )
            for key in link_clusters
        ),
        key=lambda row: (-row.megabytes, row.endpoints),
    )
    title_demand = sorted(
        title_counts.items(), key=lambda item: (-item[1], item[0])
    )
    return RunAnalysis(
        server_load=server_load,
        link_load=link_load,
        title_demand=title_demand,
        switch_histogram=switch_histogram,
    )


def render_analysis(analysis: RunAnalysis, top: int = 10) -> str:
    """Readable multi-section report of a :class:`RunAnalysis`."""
    lines: List[str] = ["Run analysis", "=" * 40]
    lines.append("Sources (by bytes served):")
    for row in analysis.server_load[:top]:
        lines.append(
            f"  {row.server_uid:<6} {row.megabytes:10.0f} MB in "
            f"{row.clusters:5d} clusters across {row.sessions:4d} sessions"
        )
    lines.append("Links (by VoD bytes carried):")
    for row in analysis.link_load[:top]:
        lines.append(
            f"  {row.endpoints[0]}-{row.endpoints[1]:<5} "
            f"{row.megabytes:10.0f} MB in {row.clusters:5d} clusters"
        )
    lines.append("Titles (by requests):")
    for title_id, count in analysis.title_demand[:top]:
        lines.append(f"  {title_id:<12} {count:5d} requests")
    lines.append("Mid-stream switches per session:")
    for switches in sorted(analysis.switch_histogram):
        lines.append(
            f"  {switches:2d} switch(es): {analysis.switch_histogram[switches]:4d} sessions"
        )
    return "\n".join(lines)
