"""Aggregation of session records into experiment metrics.

:func:`summarize_sessions` turns a batch of
:class:`~repro.core.session.SessionRecord` objects into the quantities the
comparison benchmarks report: startup delay, stalls, switches, QoS
violations, hop counts and byte-hops (network cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.session import SessionRecord
from repro.metrics.stats import mean, percentile


@dataclass(frozen=True)
class SessionMetrics:
    """Aggregate metrics over a batch of sessions.

    Attributes:
        session_count: Sessions considered.
        completed_count: Sessions that delivered every cluster.
        failed_count: Sessions that errored out.
        local_serve_fraction: Fraction of completed sessions fully served
            by the client's home server.
        mean_startup_s / p95_startup_s: Startup-delay stats (completed).
        mean_stall_s: Mean total stall time (completed).
        total_switches: Mid-stream server switches across the batch.
        switches_per_session: Mean switches per completed session.
        qos_violation_fraction: Violating clusters over all clusters.
        mean_hop_count: Mean path hops weighted per cluster.
        megabyte_hops: Sum over clusters of size_mb * hop_count — the
            network transport cost the caching policies compete on.
    """

    session_count: int
    completed_count: int
    failed_count: int
    local_serve_fraction: float
    mean_startup_s: float
    p95_startup_s: float
    mean_stall_s: float
    total_switches: int
    switches_per_session: float
    qos_violation_fraction: float
    mean_hop_count: float
    megabyte_hops: float


def summarize_sessions(records: Sequence[SessionRecord]) -> SessionMetrics:
    """Aggregate a batch of session records (empty batches allowed)."""
    completed = [r for r in records if r.completed]
    failed = [r for r in records if r.request.finished and not r.completed]

    startups = [r.startup_delay_s for r in completed]
    stalls = [r.stall_s for r in completed]
    switches = sum(r.switch_count for r in completed)

    all_clusters = [c for r in completed for c in r.clusters]
    violations = sum(1 for c in all_clusters if c.qos_violated)
    hops: List[float] = [max(len(c.path_nodes) - 1, 0) for c in all_clusters]
    mb_hops = sum(c.size_mb * max(len(c.path_nodes) - 1, 0) for c in all_clusters)
    local = sum(
        1
        for r in completed
        if all(max(len(c.path_nodes) - 1, 0) == 0 for c in r.clusters)
    )

    return SessionMetrics(
        session_count=len(records),
        completed_count=len(completed),
        failed_count=len(failed),
        local_serve_fraction=(local / len(completed)) if completed else 0.0,
        mean_startup_s=mean(startups) if startups else 0.0,
        p95_startup_s=percentile(startups, 95.0) if startups else 0.0,
        mean_stall_s=mean(stalls) if stalls else 0.0,
        total_switches=switches,
        switches_per_session=(switches / len(completed)) if completed else 0.0,
        qos_violation_fraction=(violations / len(all_clusters)) if all_clusters else 0.0,
        mean_hop_count=mean(hops) if hops else 0.0,
        megabyte_hops=mb_hops,
    )
