"""Fault schedules: scripted and seeded-random fault timelines.

A :class:`FaultSchedule` is an immutable, time-ordered list of
:class:`~repro.faults.events.FaultEvent` instances.  Two constructors:

* :meth:`FaultSchedule.scripted` — hand-written timelines for tests and
  targeted experiments;
* :meth:`FaultSchedule.seeded` — Poisson-process fault storms derived
  from a master seed via :class:`~repro.sim.rng.RngRegistry`, one
  independent stream per fault kind so changing one rate never shifts
  the arrivals of another.  The same seed and parameters always produce
  the identical schedule, which is what makes chaos runs replayable
  bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import FaultInjectionError
from repro.faults.events import (
    DISK_FAILURE,
    FAULT_KINDS,
    LINK_DEGRADE,
    LINK_FLAP,
    SERVER_CRASH,
    SNMP_BLACKOUT,
    DiskFailure,
    FaultEvent,
    LinkDegrade,
    LinkFlap,
    ServerCrash,
    SnmpBlackout,
)
from repro.sim.rng import RngRegistry

#: Floor on generated fault durations: a zero-length window would apply
#: and recover at the same instant, which tests nothing.
MIN_FAULT_DURATION_S = 1.0


class FaultSchedule:
    """An immutable, time-ordered fault timeline.

    Events are sorted by injection time; ties keep the order they were
    given in (stable sort), so equal-time events replay identically.
    """

    def __init__(self, events: Sequence[FaultEvent] = ()):
        for event in events:
            if not isinstance(event, FaultEvent):
                raise FaultInjectionError(
                    f"schedule entries must be FaultEvent, got {event!r}"
                )
        self._events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.time_s)
        )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def scripted(cls, *events: FaultEvent) -> "FaultSchedule":
        """Build a schedule from explicit events (any order)."""
        return cls(events)

    @classmethod
    def seeded(
        cls,
        seed: int,
        duration_s: float,
        link_names: Sequence[str] = (),
        server_uids: Sequence[str] = (),
        *,
        link_flap_rate_per_h: float = 0.0,
        link_degrade_rate_per_h: float = 0.0,
        server_crash_rate_per_h: float = 0.0,
        disk_failure_rate_per_h: float = 0.0,
        snmp_blackout_rate_per_h: float = 0.0,
        mean_fault_duration_s: float = 300.0,
        degrade_fraction: float = 0.5,
        disks_per_server: int = 1,
    ) -> "FaultSchedule":
        """Generate a random fault storm deterministically from ``seed``.

        Each fault kind is an independent Poisson process: inter-arrival
        times are exponential at the kind's rate, targets are drawn
        uniformly from the given lists, and durations are exponential
        around ``mean_fault_duration_s`` (floored at
        :data:`MIN_FAULT_DURATION_S`).  Every kind consumes its own
        named RNG stream (``faults.<kind>``), so the storm for one kind
        is a pure function of (seed, that kind's parameters).

        Args:
            seed: Master seed for the :class:`RngRegistry`.
            duration_s: Horizon; no fault is *injected* after it (its
                recovery may land later).
            link_names: Candidate links for flaps/degradations.
            server_uids: Candidate servers for crashes/disk failures.
            link_flap_rate_per_h: Link failures per hour (whole network).
            link_degrade_rate_per_h: Bandwidth shortages per hour.
            server_crash_rate_per_h: Server crashes per hour.
            disk_failure_rate_per_h: Disk failures per hour.
            snmp_blackout_rate_per_h: Collector blackouts per hour.
            mean_fault_duration_s: Mean of the duration distribution.
            degrade_fraction: Capacity fraction each shortage consumes.
            disks_per_server: Disk indices drawn for disk failures are
                uniform in ``[0, disks_per_server)``.
        """
        if not (duration_s > 0.0):
            raise FaultInjectionError(
                f"schedule duration must be positive, got {duration_s!r}"
            )
        if not (mean_fault_duration_s > 0.0):
            raise FaultInjectionError(
                "mean fault duration must be positive, got "
                f"{mean_fault_duration_s!r}"
            )
        if disks_per_server < 1:
            raise FaultInjectionError(
                f"disks_per_server must be >= 1, got {disks_per_server!r}"
            )
        rates = {
            LINK_FLAP: link_flap_rate_per_h,
            LINK_DEGRADE: link_degrade_rate_per_h,
            SERVER_CRASH: server_crash_rate_per_h,
            DISK_FAILURE: disk_failure_rate_per_h,
            SNMP_BLACKOUT: snmp_blackout_rate_per_h,
        }
        for kind, rate in rates.items():
            if rate < 0.0:
                raise FaultInjectionError(
                    f"{kind} rate must be >= 0, got {rate!r}"
                )
        if (rates[LINK_FLAP] > 0.0 or rates[LINK_DEGRADE] > 0.0) and not link_names:
            raise FaultInjectionError(
                "link fault rates require at least one link name"
            )
        if (
            rates[SERVER_CRASH] > 0.0 or rates[DISK_FAILURE] > 0.0
        ) and not server_uids:
            raise FaultInjectionError(
                "server fault rates require at least one server uid"
            )

        links = tuple(link_names)
        servers = tuple(server_uids)
        rngs = RngRegistry(master_seed=seed)
        events: List[FaultEvent] = []
        for kind in FAULT_KINDS:  # fixed order: stream creation is stable
            rate_per_s = rates[kind] / 3600.0
            if rate_per_s <= 0.0:
                continue
            rng = rngs.stream(f"faults.{kind}")
            at = rng.expovariate(rate_per_s)
            while at <= duration_s:
                dur = max(
                    MIN_FAULT_DURATION_S,
                    rng.expovariate(1.0 / mean_fault_duration_s),
                )
                if kind == LINK_FLAP:
                    events.append(
                        LinkFlap(at, dur, link_name=rng.choice(links))
                    )
                elif kind == LINK_DEGRADE:
                    events.append(
                        LinkDegrade(
                            at,
                            dur,
                            link_name=rng.choice(links),
                            fraction=degrade_fraction,
                        )
                    )
                elif kind == SERVER_CRASH:
                    events.append(
                        ServerCrash(at, dur, server_uid=rng.choice(servers))
                    )
                elif kind == DISK_FAILURE:
                    events.append(
                        DiskFailure(
                            at,
                            dur,
                            server_uid=rng.choice(servers),
                            disk_index=rng.randrange(disks_per_server),
                        )
                    )
                else:
                    events.append(SnmpBlackout(at, dur))
                at += rng.expovariate(rate_per_s)
        return cls(events)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def events(self) -> Tuple[FaultEvent, ...]:
        """The events, sorted by injection time."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultSchedule):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    @property
    def horizon_s(self) -> float:
        """When the last recovery lands (0 for an empty schedule)."""
        return max((e.recovery_time_s for e in self._events), default=0.0)

    def counts_by_kind(self) -> Dict[str, int]:
        """Event counts per fault kind (every kind present, maybe 0)."""
        counts = {kind: 0 for kind in FAULT_KINDS}
        for event in self._events:
            counts[event.kind] += 1
        return counts
