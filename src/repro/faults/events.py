"""Typed fault events.

The paper's operational claim — the service "adjusts itself to the
changes occurring to the network ... such changes may be bandwidth
shortages or server configuration changes" — is only testable if those
changes can be *injected* deterministically.  Each event class below
models one failure mode the service must absorb:

* :class:`LinkFlap` — a backbone link goes down and later recovers;
* :class:`LinkDegrade` — a bandwidth shortage: a slice of the link's
  capacity is eaten by a surge of non-VoD traffic for a while;
* :class:`ServerCrash` — a video server stops answering polls, then
  recovers;
* :class:`DiskFailure` — one disk in a server's striping array dies,
  making every title with clusters on it unservable until the swap;
* :class:`SnmpBlackout` — the statistics collectors go dark, so the VRA
  routes on stale link stats until collection resumes.

Events carry *offsets* (``time_s``) from the injector's start and a
``duration_s`` after which the paired recovery is applied.  All events
are frozen and comparable, so a :class:`~repro.faults.schedule.FaultSchedule`
replays bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict

from repro.errors import FaultInjectionError

#: Fault-kind labels (the ``kind`` label on the ``fault.*`` instruments).
LINK_FLAP = "link-flap"
LINK_DEGRADE = "link-degrade"
SERVER_CRASH = "server-crash"
DISK_FAILURE = "disk-failure"
SNMP_BLACKOUT = "snmp-blackout"

#: Every kind, in the canonical reporting order.
FAULT_KINDS = (LINK_FLAP, LINK_DEGRADE, SERVER_CRASH, DISK_FAILURE, SNMP_BLACKOUT)


@dataclass(frozen=True)
class FaultEvent:
    """Base fault: an injection at ``time_s`` undone ``duration_s`` later.

    Attributes:
        time_s: Offset from the injector's start, simulated seconds.
        duration_s: How long the fault stays applied before recovery.
    """

    time_s: float
    duration_s: float

    #: Overridden per subclass; ClassVar keeps it out of the field list
    #: (and out of the constructor signature).
    kind: ClassVar[str] = ""

    def __post_init__(self) -> None:
        if not (self.time_s >= 0.0):
            raise FaultInjectionError(
                f"fault time must be >= 0, got {self.time_s!r}"
            )
        if not (self.duration_s > 0.0):
            raise FaultInjectionError(
                f"fault duration must be positive, got {self.duration_s!r}"
            )

    @property
    def target(self) -> str:
        """What the fault hits (link name, server uid, ...)."""
        return "network"

    @property
    def recovery_time_s(self) -> float:
        """Offset at which the paired recovery applies."""
        return self.time_s + self.duration_s

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form for reports and JSON export."""
        return {
            "kind": self.kind,
            "target": self.target,
            "time_s": self.time_s,
            "duration_s": self.duration_s,
        }


def _require(value: str, what: str) -> None:
    if not value:
        raise FaultInjectionError(f"{what} must be non-empty")


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """A link fails (``online = False``) and recovers after the window.

    Overlapping flaps of the same link stack: the link comes back only
    when the last window closes.
    """

    link_name: str = ""
    kind = LINK_FLAP

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.link_name, "link_name")

    @property
    def target(self) -> str:
        return self.link_name


@dataclass(frozen=True)
class LinkDegrade(FaultEvent):
    """A bandwidth shortage: ``fraction`` of the link's capacity is taken
    by extra background traffic for the window (clamped at capacity), then
    released.  Overlapping degradations stack additively."""

    link_name: str = ""
    fraction: float = 0.5
    kind = LINK_DEGRADE

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.link_name, "link_name")
        if not (0.0 < self.fraction <= 1.0):
            raise FaultInjectionError(
                f"degrade fraction must be in (0, 1], got {self.fraction!r}"
            )

    @property
    def target(self) -> str:
        return self.link_name

    def as_dict(self) -> Dict[str, object]:
        data = super().as_dict()
        data["fraction"] = self.fraction
        return data


@dataclass(frozen=True)
class ServerCrash(FaultEvent):
    """A video server crashes (``online = False``) and later recovers.
    Its cached titles stay advertised in the database; availability polls
    keep it out of decisions while down.  Overlapping crashes stack."""

    server_uid: str = ""
    kind = SERVER_CRASH

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.server_uid, "server_uid")

    @property
    def target(self) -> str:
        return self.server_uid


@dataclass(frozen=True)
class DiskFailure(FaultEvent):
    """One disk in a server's striping array fails.  Cyclic striping means
    most resident titles touch the dead disk and poll out until the disk
    is swapped back in at recovery."""

    server_uid: str = ""
    disk_index: int = 0
    kind = DISK_FAILURE

    def __post_init__(self) -> None:
        super().__post_init__()
        _require(self.server_uid, "server_uid")
        if self.disk_index < 0:
            raise FaultInjectionError(
                f"disk index must be >= 0, got {self.disk_index!r}"
            )

    @property
    def target(self) -> str:
        return f"{self.server_uid}:disk{self.disk_index}"

    def as_dict(self) -> Dict[str, object]:
        data = super().as_dict()
        data["disk_index"] = self.disk_index
        return data


@dataclass(frozen=True)
class SnmpBlackout(FaultEvent):
    """The SNMP statistics collectors go dark: collection rounds are
    skipped whole and the VRA routes on the last stats written until the
    blackout lifts.  Overlapping blackouts nest."""

    kind = SNMP_BLACKOUT

    @property
    def target(self) -> str:
        return "collector"
