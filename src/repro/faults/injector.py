"""The fault injector: applies a schedule against a running service.

The :class:`FaultInjector` turns a :class:`~repro.faults.schedule.FaultSchedule`
into simulator events — one injection and one recovery per fault — and
drives every mutation through the exact surfaces the production code
already journals:

* link flaps flip :attr:`Link.online` (value-aware, bumps the link's
  state version → routing epoch, change journal);
* bandwidth shortages add background traffic via
  :meth:`Link.set_background_mbps` (traffic version), remembering the
  *applied* delta so a capacity-clamped shortage is undone exactly;
* server crashes flip the value-aware :attr:`VideoServer.online`
  (availability polls then exclude the server — no epoch bump needed,
  server state enters decisions via the live poll);
* disk failures call :meth:`DiskArray.fail_disk` / ``restore_disk``;
* SNMP blackouts nest :meth:`StatisticsService.blackout` / ``restore``.

Overlapping windows of the same fault on the same target are depth
counted: the target recovers only when the *last* window closes, so a
random storm can never "recover" a resource another active fault still
holds down.

All bookkeeping the resilience report consumes (`injected_by_kind`,
`mttr`, the fault log) is plain sim-time integers/floats independent of
the obs layer, so a seeded chaos run replays bit-for-bit whether or not
telemetry is on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import FaultInjectionError
from repro.faults.events import (
    DISK_FAILURE,
    FAULT_KINDS,
    LINK_DEGRADE,
    LINK_FLAP,
    SERVER_CRASH,
    SNMP_BLACKOUT,
    DiskFailure,
    FaultEvent,
    LinkDegrade,
)
from repro.faults.schedule import FaultSchedule
from repro.obs.registry import NULL_COUNTER, NULL_HISTOGRAM, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.service import VoDService


class FaultInjector:
    """Applies one fault schedule to one service, on the sim clock.

    Args:
        service: The running :class:`~repro.core.service.VoDService`.
        schedule: The fault timeline; offsets are relative to the sim
            time at which :meth:`start` is called.
        registry: Metrics registry for the ``fault.*`` instruments;
            defaults to the service's own (no-ops when telemetry is off).
    """

    def __init__(
        self,
        service: "VoDService",
        schedule: FaultSchedule,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._service = service
        self._sim = service.sim
        self.schedule = schedule
        self._registry = registry if registry is not None else service.obs
        self._started = False
        self._started_at = 0.0
        #: Wall-clock timer around each injection/recovery body
        #: (obs.phase.fault_inject_ms; a shared no-op unless the
        #: service's phase-profiling knob is on).
        self._phase_timer = service.profiler.timer("fault_inject")

        #: Plain deterministic counters — the resilience report reads
        #: these, never the obs instruments (which may be disabled).
        self.injected_by_kind: Dict[str, int] = {k: 0 for k in FAULT_KINDS}
        self.recovered_by_kind: Dict[str, int] = {k: 0 for k in FAULT_KINDS}
        #: Chronological record of every injection/recovery, for reports
        #: and the chaos CLI (bounded by 2 * len(schedule)).
        self.log: List[Dict[str, object]] = []
        self._mttr_total_s = 0.0
        self._mttr_count = 0

        # Depth counters per (kind, target): overlapping windows stack.
        self._depth: Dict[Tuple[str, str], int] = {}
        # Applied background-traffic deltas per active degrade window, in
        # application order per link (clamp-aware undo pops its own entry).
        self._degrade_applied: Dict[int, float] = {}
        self._active = 0

        self._m_injected: Dict[str, object] = {}
        self._m_recovered: Dict[str, object] = {}
        self._m_mttr = NULL_HISTOGRAM
        self._attach_metrics()

    def _attach_metrics(self) -> None:
        registry = self._registry
        for kind in FAULT_KINDS:
            self._m_injected[kind] = registry.counter(
                "fault.injected", subsystem="faults", labels={"kind": kind},
                description="faults applied by the injector",
            )
            self._m_recovered[kind] = registry.counter(
                "fault.recovered", subsystem="faults", labels={"kind": kind},
                description="fault windows closed by the injector",
            )
        self._m_mttr = registry.histogram(
            "resilience.fault_mttr_s", subsystem="faults",
            description="simulated time from injection to recovery per fault (s)",
        )
        if registry.enabled:
            registry.gauge(
                "fault.active", subsystem="faults",
                description="fault windows currently open",
                callback=lambda: float(self._active),
            )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        """True once :meth:`start` has scheduled the timeline."""
        return self._started

    @property
    def active_faults(self) -> int:
        """Fault windows currently open."""
        return self._active

    @property
    def mean_mttr_s(self) -> float:
        """Mean injection-to-recovery time over recovered faults (s)."""
        if self._mttr_count == 0:
            return 0.0
        return self._mttr_total_s / self._mttr_count

    def start(self) -> None:
        """Schedule every injection (and, at apply time, its recovery).

        Offsets in the schedule are relative to the sim clock *now*.
        May only be called once.
        """
        if self._started:
            raise FaultInjectionError("fault injector already started")
        self._started = True
        self._started_at = self._sim.now
        for event in self.schedule:
            self._sim.schedule_at(
                self._started_at + event.time_s,
                self._apply,
                event,
                name=f"fault:{event.kind}:{event.target}",
            )

    # ------------------------------------------------------------------ #
    # apply / recover
    # ------------------------------------------------------------------ #
    def _apply(self, event: FaultEvent) -> None:
        t_phase = self._phase_timer.start()
        try:
            self._do_apply(event)
        finally:
            self._phase_timer.stop(t_phase)

    def _do_apply(self, event: FaultEvent) -> None:
        token = (event.kind, event.target)
        depth = self._depth.get(token, 0)
        self._depth[token] = depth + 1
        first = depth == 0

        if event.kind == LINK_FLAP:
            if first:
                self._service.topology.link_named(event.target).online = False
        elif event.kind == LINK_DEGRADE:
            self._apply_degrade(event)
        elif event.kind == SERVER_CRASH:
            if first:
                self._server_of(event.target).online = False
        elif event.kind == DISK_FAILURE:
            if first:
                self._server_of(event.server_uid).array.fail_disk(event.disk_index)
                # Crashes and link flaps reach the failover supervisor via
                # the state-change listeners; a disk death leaves the
                # server online, so it is reported here explicitly.
                supervisor = self._service.supervisor
                if supervisor is not None:
                    supervisor.on_disk_failure(event.server_uid)
        elif event.kind == SNMP_BLACKOUT:
            self._service.statistics.blackout()
        else:  # pragma: no cover - schedule validation rejects unknown kinds
            raise FaultInjectionError(f"unknown fault kind {event.kind!r}")

        self._active += 1
        self.injected_by_kind[event.kind] += 1
        self._m_injected[event.kind].inc()
        now = self._sim.now
        self.log.append(
            {"at_s": now, "action": "inject", **event.as_dict()}
        )
        self._service.tracer.record(
            now,
            "fault.injected",
            f"{event.kind} on {event.target} for {event.duration_s:g}s",
            kind=event.kind,
            target=event.target,
            duration_s=event.duration_s,
        )
        self._sim.schedule(
            event.duration_s,
            self._recover,
            event,
            name=f"recover:{event.kind}:{event.target}",
        )

    def _recover(self, event: FaultEvent) -> None:
        t_phase = self._phase_timer.start()
        try:
            self._do_recover(event)
        finally:
            self._phase_timer.stop(t_phase)

    def _do_recover(self, event: FaultEvent) -> None:
        token = (event.kind, event.target)
        depth = self._depth.get(token, 0)
        if depth <= 0:  # pragma: no cover - apply always precedes recover
            raise FaultInjectionError(
                f"recovery without matching injection: {event!r}"
            )
        self._depth[token] = depth - 1
        last = depth == 1

        if event.kind == LINK_FLAP:
            if last:
                self._service.topology.link_named(event.target).online = True
        elif event.kind == LINK_DEGRADE:
            self._recover_degrade(event)
        elif event.kind == SERVER_CRASH:
            if last:
                self._server_of(event.target).online = True
        elif event.kind == DISK_FAILURE:
            if last:
                self._server_of(event.server_uid).array.restore_disk(
                    event.disk_index
                )
        elif event.kind == SNMP_BLACKOUT:
            self._service.statistics.restore()

        self._active -= 1
        self.recovered_by_kind[event.kind] += 1
        self._m_recovered[event.kind].inc()
        self._mttr_total_s += event.duration_s
        self._mttr_count += 1
        self._m_mttr.observe(event.duration_s)
        now = self._sim.now
        self.log.append(
            {"at_s": now, "action": "recover", **event.as_dict()}
        )
        self._service.tracer.record(
            now,
            "fault.recovered",
            f"{event.kind} on {event.target} recovered",
            kind=event.kind,
            target=event.target,
        )

    def _apply_degrade(self, event: LinkDegrade) -> None:
        link = self._service.topology.link_named(event.link_name)
        before = link.background_mbps
        link.set_background_mbps(before + event.fraction * link.capacity_mbps)
        # Remember the delta actually applied: the setter clamps at
        # capacity, so overlapping shortages must each undo only what
        # they really added.
        self._degrade_applied[id(event)] = link.background_mbps - before

    def _recover_degrade(self, event: LinkDegrade) -> None:
        applied = self._degrade_applied.pop(id(event), 0.0)
        if applied <= 0.0:
            return
        link = self._service.topology.link_named(event.link_name)
        link.set_background_mbps(max(link.background_mbps - applied, 0.0))

    def _server_of(self, uid: str):
        try:
            return self._service.servers[uid]
        except KeyError:
            raise FaultInjectionError(
                f"fault targets unknown server {uid!r}"
            ) from None

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def report(self) -> Dict[str, object]:
        """Deterministic summary of the injection campaign so far.

        Every value is a count or a simulated-time figure, so the same
        seed and schedule reproduce this dict exactly.
        """
        return {
            "scheduled": len(self.schedule),
            "injected": dict(self.injected_by_kind),
            "recovered": dict(self.recovered_by_kind),
            "active": self._active,
            "mean_mttr_s": self.mean_mttr_s,
        }
