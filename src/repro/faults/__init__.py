"""Deterministic fault injection.

The paper's dynamic service exists *because* networks fail — "bandwidth
shortages or server configuration changes" — yet a simulation only
exercises those paths if failures actually happen, on demand and
reproducibly.  This package provides:

* :mod:`repro.faults.events` — typed fault events (link flap, bandwidth
  shortage, server crash, disk failure, SNMP collector blackout);
* :mod:`repro.faults.schedule` — :class:`FaultSchedule`: scripted
  timelines or seeded Poisson fault storms, replayable bit-for-bit;
* :mod:`repro.faults.injector` — :class:`FaultInjector`: applies a
  schedule against a running :class:`~repro.core.service.VoDService` on
  the sim clock, depth-counting overlapping windows, journaling every
  mutation through the production change surfaces, and keeping the
  deterministic counters the resilience report is built from.

See ``docs/RESILIENCE.md`` and ``python -m repro chaos``.
"""

from repro.faults.events import (
    DISK_FAILURE,
    FAULT_KINDS,
    LINK_DEGRADE,
    LINK_FLAP,
    SERVER_CRASH,
    SNMP_BLACKOUT,
    DiskFailure,
    FaultEvent,
    LinkDegrade,
    LinkFlap,
    ServerCrash,
    SnmpBlackout,
)
from repro.faults.injector import FaultInjector
from repro.faults.schedule import MIN_FAULT_DURATION_S, FaultSchedule

__all__ = [
    "DISK_FAILURE",
    "DiskFailure",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "LINK_DEGRADE",
    "LINK_FLAP",
    "LinkDegrade",
    "LinkFlap",
    "MIN_FAULT_DURATION_S",
    "SERVER_CRASH",
    "SNMP_BLACKOUT",
    "ServerCrash",
    "SnmpBlackout",
]
