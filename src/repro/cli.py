"""Command-line interface.

Exposes the reproduction's main entry points without writing Python::

    python -m repro case-study                 # Tables 2-5 + Experiments A-D
    python -m repro experiment A               # one experiment, full trace
    python -m repro lvn --time 4pm             # the LVN weight table
    python -m repro simulate --cache dma ...   # a service-level workload run
    python -m repro placement --check          # placement-policy comparison + gates
    python -m repro obs --format jsonl         # telemetry of an instrumented run
    python -m repro chaos --seed 7             # seeded fault storm + resilience report
    python -m repro sweep-cluster-size         # the X4 ablation summary

Every subcommand prints plain text to stdout and exits 0 on success; bad
arguments exit 2 (argparse) and reproduction mismatches exit 1.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.service import ServiceConfig
from repro.placement.base import PLACEMENT_KINDS, PlacementConfig
from repro.experiments.casestudy import (
    EXPERIMENTS,
    compute_table3_lvn,
    run_all_experiments,
    run_experiment,
)
from repro.experiments.harness import ServiceExperiment, run_service_experiment
from repro.experiments.report import (
    render_experiment,
    render_table,
    render_table2,
    render_table3,
)
from repro.network.grnet import GRNET_NODES, SAMPLE_TIMES
from repro.workload.scenarios import regional_scenario


def _add_fast_path_arguments(subparser: argparse.ArgumentParser) -> None:
    """Decision-memo / admission-queue knobs shared by run subcommands."""
    group = subparser.add_argument_group("fast path")
    group.add_argument(
        "--decision-cache-size", type=int, default=0, metavar="N",
        help="LRU bound on whole-decision memoization (0 disables; "
             "requires the routing cache, which is on by default)",
    )
    group.add_argument(
        "--admission-queue-capacity", type=int, default=0, metavar="N",
        help="enable the load-leveling admission queue with N waiting "
             "slots (0 disables; excess arrivals are shed)",
    )
    group.add_argument(
        "--admission-rate", type=float, default=100.0, metavar="R",
        help="admission-queue drain rate in admissions per simulated second",
    )
    group.add_argument(
        "--admission-tick", type=float, default=1.0, metavar="S",
        help="admission-queue drain-tick width in simulated seconds",
    )
    group.add_argument(
        "--no-compiled-routing", action="store_true",
        help="price decisions with the per-link python loops instead of "
             "the array-compiled topology snapshot; decisions are "
             "bit-for-bit identical either way, only slower on cache "
             "misses (see DESIGN.md on the compiled-snapshot contract)",
    )


def _fast_path_config_kwargs(args: argparse.Namespace) -> dict:
    """Map the shared fast-path CLI knobs onto ``ServiceConfig`` fields."""
    return {
        "decision_cache_size": args.decision_cache_size,
        "admission_queue_capacity": args.admission_queue_capacity,
        "admission_rate_per_s": args.admission_rate,
        "admission_tick_s": args.admission_tick,
        "compiled_routing": not args.no_compiled_routing,
    }


def _add_placement_arguments(subparser: argparse.ArgumentParser) -> None:
    """Placement-policy knobs shared by ``simulate`` and ``placement``."""
    group = subparser.add_argument_group("placement")
    group.add_argument(
        "--prefix-minutes", type=float, default=10.0, metavar="MIN",
        help="prefix length cached for hot titles under --placement=prefix",
    )
    group.add_argument(
        "--hot-points", type=int, default=2, metavar="N",
        help="popularity points before a title earns a prefix copy "
             "(--placement=prefix)",
    )
    group.add_argument(
        "--partial-floor", type=float, default=0.1, metavar="FRACTION",
        help="minimum cached fraction per admitted title under "
             "--placement=partial",
    )


def _placement_config_from(args: argparse.Namespace, kind: str) -> PlacementConfig:
    """Build the single placement config object from the shared CLI knobs."""
    if kind == "prefix":
        return PlacementConfig(
            kind="prefix",
            prefix_minutes=args.prefix_minutes,
            hot_points=args.hot_points,
        )
    if kind == "partial":
        return PlacementConfig(kind="partial", partial_floor=args.partial_floor)
    return PlacementConfig(kind="dma")


def _add_telemetry_arguments(subparser: argparse.ArgumentParser) -> None:
    """Streaming-telemetry knobs shared by run subcommands."""
    group = subparser.add_argument_group("telemetry")
    group.add_argument(
        "--telemetry-out", metavar="FILE", default=None,
        help="export the run's telemetry (manifest + rows + footer) to "
             "FILE; JSONL by default, CSV when FILE ends in .csv.  "
             "Enables observability for the run",
    )
    group.add_argument(
        "--stream-telemetry", action="store_true",
        help="write telemetry behind the run: spans flush on session "
             "close and sampler rings spill when full, holding memory "
             "O(active sessions + ring capacity); requires --telemetry-out",
    )
    group.add_argument(
        "--phase-profile", action="store_true",
        help="record wall-clock obs.phase.* histograms (VRA decide, "
             "cache sync, admission drain, fault injection, SNMP "
             "collection) and obs.memory.* gauges",
    )


def _telemetry_hook(args: argparse.Namespace, label: str):
    """(service hook, state box) attaching a streaming sink, or (None, {}).

    The hook starts a :class:`~repro.obs.stream.StreamingTelemetry` on
    the freshly built service; the caller finishes it after the run via
    ``box["streamer"]`` and prints the footer line.
    """
    if args.telemetry_out is None:
        if args.stream_telemetry:
            raise SystemExit("--stream-telemetry requires --telemetry-out")
        return None, {}
    from repro.obs.sink import open_sink
    from repro.obs.stream import StreamingTelemetry

    fmt = "csv" if args.telemetry_out.endswith(".csv") else "jsonl"
    box: dict = {}

    def hook(service) -> None:
        sink = open_sink(args.telemetry_out, fmt)
        streamer = StreamingTelemetry(
            service, sink,
            seed=args.seed, label=label, stream=args.stream_telemetry,
        )
        streamer.start()
        box["streamer"] = streamer

    return hook, box


def _finish_telemetry(args: argparse.Namespace, box: dict) -> None:
    """Drain and close the streaming sink; print the footer line."""
    streamer = box.get("streamer")
    if streamer is None:
        return
    footer = streamer.finish()
    mode = "streamed" if args.stream_telemetry else "buffered"
    print(
        f"telemetry: {footer['rows_written']} rows {mode} to "
        f"{args.telemetry_out} ({footer['rows_skipped']} skipped, "
        f"{footer['spans_flushed']} spans flushed live, "
        f"{footer['samples_spilled']} samples spilled, "
        f"peak {footer['peak_resident_rows']} resident rows)"
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Dynamic Distributed Video on Demand "
            "Service' (Bouras et al., ICDCS 2000)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "case-study",
        help="print Tables 2-5 and Experiments A-D next to the paper's values",
    )

    experiment = commands.add_parser(
        "experiment", help="run one case-study experiment with its Dijkstra trace"
    )
    experiment.add_argument("exp_id", choices=sorted(EXPERIMENTS), metavar="{A,B,C,D}")

    lvn = commands.add_parser("lvn", help="print the LVN weight table (Table 3 column)")
    lvn.add_argument("--time", choices=SAMPLE_TIMES, default="8am")
    lvn.add_argument(
        "--normalization-constant",
        type=float,
        default=10.0,
        help="the K of equation (4); the paper suggests 10",
    )

    simulate = commands.add_parser(
        "simulate", help="run a service-level workload on GRNET and print metrics"
    )
    simulate.add_argument("--cache", default="dma",
                          choices=["dma", "dma-greedy", "nocache", "lru", "fullrep"])
    simulate.add_argument("--placement", default="dma",
                          choices=list(PLACEMENT_KINDS),
                          help="placement policy for the default cache: the "
                               "paper's whole-title DMA, prefix replication, "
                               "or popularity-weighted partial caching "
                               "(requires --cache=dma)")
    simulate.add_argument("--selection", default="vra",
                          choices=["vra", "random", "minhop", "static"])
    simulate.add_argument("--switching", default="always",
                          help="'always', 'never' or 'period:<n>'")
    simulate.add_argument("--catalog-size", type=int, default=18)
    simulate.add_argument("--title-mb", type=float, default=150.0,
                          help="uniform title size; keep below the per-server cache")
    simulate.add_argument("--title-minutes", type=float, default=60.0)
    simulate.add_argument("--requests-per-node", type=int, default=30)
    simulate.add_argument("--zipf", type=float, default=1.0)
    simulate.add_argument("--cluster-mb", type=float, default=50.0)
    simulate.add_argument("--disk-capacity-mb", type=float, default=250.0)
    simulate.add_argument("--disk-count", type=int, default=3)
    simulate.add_argument("--seed", type=int, default=23)
    simulate.add_argument("--replay-table2", action="store_true",
                          help="morph background traffic through the Table 2 day")
    simulate.add_argument("--topology", metavar="FILE", default=None,
                          help="JSON topology (see 'repro export-grnet'); "
                               "defaults to the paper's GRNET backbone")
    simulate.add_argument("--report", action="store_true",
                          help="print per-server/link/title analysis after the run")
    _add_placement_arguments(simulate)
    _add_fast_path_arguments(simulate)
    _add_telemetry_arguments(simulate)

    placement = commands.add_parser(
        "placement",
        help="compare the placement policies (DMA, prefix, partial) on GRNET",
    )
    placement.add_argument("--requests-per-node", type=int, default=12)
    placement.add_argument("--catalog-size", type=int, default=12)
    placement.add_argument("--seed", type=int, default=23)
    placement.add_argument("--title-mb", type=float, default=400.0,
                           help="uniform title size; the default overflows "
                                "the per-server cache so placement matters")
    placement.add_argument("--title-minutes", type=float, default=60.0)
    placement.add_argument("--cluster-mb", type=float, default=50.0)
    placement.add_argument("--disk-count", type=int, default=2)
    placement.add_argument("--disk-capacity-mb", type=float, default=500.0)
    placement.add_argument("--check", action="store_true",
                           help="also run the replay gates: the DMA run must "
                                "reproduce byte-identically and match the "
                                "deprecated DiskManipulationAlgorithm shim; "
                                "exit 1 on any gate failure")
    _add_placement_arguments(placement)

    obs = commands.add_parser(
        "obs",
        help="run an observability-enabled GRNET workload and export its telemetry",
    )
    obs.add_argument("--format", choices=["summary", "jsonl", "csv"],
                     default="summary",
                     help="operator summary (default) or machine-readable export")
    obs.add_argument("--out", metavar="FILE", default=None,
                     help="write the jsonl/csv export to FILE instead of stdout")
    obs.add_argument("--trace-out", metavar="FILE", default=None,
                     help="also write the structured event trace (span.* "
                          "categories included) as JSONL")
    obs.add_argument("--timeline", metavar="FAMILY", default=None,
                     help="print a sparkline timeline of one sampled gauge "
                          "family, e.g. link.utilization")
    obs.add_argument("--scenario", choices=["regional", "flash-crowd"],
                     default="regional")
    obs.add_argument("--requests-per-node", type=int, default=12)
    obs.add_argument("--catalog-size", type=int, default=8)
    obs.add_argument("--sample-period", type=float, default=60.0,
                     help="simulated seconds between telemetry samples")
    obs.add_argument("--seed", type=int, default=23)
    _add_fast_path_arguments(obs)
    _add_telemetry_arguments(obs)

    chaos = commands.add_parser(
        "chaos",
        help="run a seeded fault storm on GRNET and print the resilience report",
    )
    chaos.add_argument("--seed", type=int, default=42,
                       help="master seed for workload and fault schedule")
    chaos.add_argument("--duration-hours", type=float, default=4.0,
                       help="fault/workload horizon in simulated hours")
    chaos.add_argument("--requests-per-node", type=int, default=30)
    chaos.add_argument("--link-flap-rate", type=float, default=2.0,
                       metavar="PER_H", help="link failures per hour")
    chaos.add_argument("--link-degrade-rate", type=float, default=2.0,
                       metavar="PER_H", help="bandwidth shortages per hour")
    chaos.add_argument("--server-crash-rate", type=float, default=1.0,
                       metavar="PER_H", help="server crashes per hour")
    chaos.add_argument("--disk-failure-rate", type=float, default=0.5,
                       metavar="PER_H", help="disk failures per hour")
    chaos.add_argument("--snmp-blackout-rate", type=float, default=0.5,
                       metavar="PER_H", help="collector blackouts per hour")
    chaos.add_argument("--mean-fault-duration", type=float, default=300.0,
                       metavar="S", help="mean fault window length (s)")
    chaos.add_argument("--retry-attempts", type=int, default=5,
                       help="session retry budget per cluster boundary")
    chaos.add_argument("--retry-backoff", type=float, default=20.0,
                       metavar="S", help="first retry delay (s)")
    chaos.add_argument("--failover", action="store_true",
                       help="enable the mid-stream session-failover "
                            "supervisor")
    chaos.add_argument("--failover-backoff", type=float, default=15.0,
                       metavar="S",
                       help="wait between failover re-decide attempts (s)")
    chaos.add_argument("--breaker-threshold", type=int, default=0,
                       metavar="N",
                       help="circuit-breaker trip threshold (failures per "
                            "window); 0 disables breakers")
    chaos.add_argument("--breaker-window", type=float, default=600.0,
                       metavar="S", help="breaker failure-count window (s)")
    chaos.add_argument("--breaker-cooldown", type=float, default=300.0,
                       metavar="S",
                       help="open-state dwell before the half-open probe (s)")
    chaos.add_argument("--max-stats-age", type=float, default=None,
                       metavar="S",
                       help="staleness guard: SNMP samples older than this "
                            "inflate their link's weight and mark decisions "
                            "degraded")
    chaos.add_argument("--min-availability", type=float, default=None,
                       metavar="FRACTION",
                       help="exit 1 if completed/finished sessions falls "
                            "below this floor (CI smoke gate)")
    chaos.add_argument("--min-recovered", type=int, default=None,
                       metavar="N",
                       help="exit 1 if fewer than N sessions recovered "
                            "(retry recoveries + mid-stream failovers)")
    chaos.add_argument("--max-p95-stall-s", type=float, default=None,
                       metavar="S",
                       help="exit 1 if the p95 total stall of completed "
                            "sessions exceeds this bound (s)")
    chaos.add_argument("--json", action="store_true",
                       help="print the report as JSON instead of text")
    chaos.add_argument("--show-faults", action="store_true",
                       help="also print the chronological fault log")
    _add_telemetry_arguments(chaos)

    sweep = commands.add_parser(
        "sweep-cluster-size",
        help="the X4 ablation: switching granularity vs congestion damage",
    )
    sweep.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the sweep points (default: one per "
        "CPU; 1 = serial; output is identical at any job count)",
    )

    export = commands.add_parser(
        "export-grnet",
        help="write the paper's GRNET topology to a JSON file as a template",
    )
    export.add_argument("path", metavar="FILE")
    export.add_argument("--time", choices=SAMPLE_TIMES, default=None,
                        help="also bake in one Table 2 traffic column")
    return parser


def _cmd_case_study() -> int:
    print(render_table2())
    print()
    print(render_table3())
    outcomes = run_all_experiments()
    for outcome in outcomes.values():
        print()
        print("=" * 72)
        print(render_experiment(outcome))
    mismatches = [o for o in outcomes.values() if not o.matches_corrected]
    return 1 if mismatches else 0


def _cmd_experiment(exp_id: str) -> int:
    outcome = run_experiment(exp_id)
    print(render_experiment(outcome))
    return 0 if outcome.matches_corrected else 1


def _cmd_lvn(time_label: str, k: float) -> int:
    table = compute_table3_lvn(normalization_constant=k)
    rows = [
        [link_name, f"{values[time_label]:.6f}"]
        for link_name, values in table.items()
    ]
    print(
        render_table(
            ["Link", f"LVN @{time_label} (K={k:g})"],
            rows,
            title="Link Validation Numbers (equations 1-4)",
        )
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.storage.video import VideoTitle

    if args.placement != "dma" and args.cache != "dma":
        raise SystemExit(
            "--placement overrides the default cache policy; "
            "it cannot be combined with --cache=" + args.cache
        )
    topology_factory = None
    if args.topology is not None:
        from repro.io import load_topology

        custom = load_topology(args.topology)
        custom.validate()
        nodes = custom.node_uids()

        def topology_factory():
            return load_topology(args.topology)

    else:
        nodes = list(GRNET_NODES)
    catalog = [
        VideoTitle(
            f"title-{i:03d}",
            size_mb=args.title_mb,
            duration_s=args.title_minutes * 60.0,
        )
        for i in range(1, args.catalog_size + 1)
    ]
    scenario = regional_scenario(
        nodes,
        requests_per_node=args.requests_per_node,
        zipf_exponent=args.zipf,
        seed=args.seed,
        catalog=catalog,
    )
    hook, telemetry_box = _telemetry_hook(args, label="simulate")
    experiment = ServiceExperiment(
        name="cli",
        scenario=scenario,
        config=ServiceConfig(
            cluster_mb=args.cluster_mb,
            disk_count=args.disk_count,
            disk_capacity_mb=args.disk_capacity_mb,
            max_streams=64,
            use_reported_stats=False,
            observability=args.telemetry_out is not None or args.phase_profile,
            phase_profiling=args.phase_profile,
            placement=_placement_config_from(args, args.placement),
            **_fast_path_config_kwargs(args),
        ),
        cache=args.cache,
        selection=args.selection,
        switching=args.switching,
        replay_table2=args.replay_table2,
        start_time=8 * 3600.0 if args.replay_table2 else 0.0,
        seed=args.seed,
        service_hook=hook,
    )
    if topology_factory is not None:
        experiment.topology_factory = topology_factory
    result = run_service_experiment(experiment)
    _finish_telemetry(args, telemetry_box)
    metrics = result.metrics
    print(f"sessions ............. {metrics.session_count}")
    print(f"completed ............ {metrics.completed_count}")
    print(f"failed ............... {metrics.failed_count}")
    print(f"local serve fraction . {metrics.local_serve_fraction:.3f}")
    print(f"mean startup ......... {metrics.mean_startup_s:.1f} s")
    print(f"p95 startup .......... {metrics.p95_startup_s:.1f} s")
    print(f"mean stall ........... {metrics.mean_stall_s:.1f} s")
    print(f"server switches ...... {metrics.total_switches}")
    print(f"QoS violations ....... {metrics.qos_violation_fraction:.3f}")
    print(f"transport cost ....... {metrics.megabyte_hops:.0f} MB-hops")
    service = result.service
    # Alternative --selection policies replace service.vra wholesale and
    # carry no memo; only the real VRA exposes a decision cache.
    if getattr(service.vra, "decision_cache", None) is not None:
        from repro.experiments.report import render_decision_cache

        print()
        print(
            render_decision_cache(
                service.vra.decision_cache_stats, title="Decision cache"
            )
        )
    if service.admission_queue is not None:
        from repro.experiments.report import render_admission_queue

        print()
        print(
            render_admission_queue(
                service.admission_queue.stats, title="Admission queue"
            )
        )
    if args.phase_profile:
        from repro.experiments.report import render_phase_profile

        print()
        print(render_phase_profile(service.obs, title="Phase profile"))
    if args.report:
        from repro.metrics.analysis import analyze_sessions, render_analysis

        print()
        print(render_analysis(analyze_sessions(result.service.sessions)))
    return 0


def _cmd_placement(args: argparse.Namespace) -> int:
    from repro.experiments.placement import (
        render_placement_comparison,
        run_placement_experiment,
    )

    comparison = run_placement_experiment(
        requests_per_node=args.requests_per_node,
        catalog_size=args.catalog_size,
        seed=args.seed,
        title_mb=args.title_mb,
        title_minutes=args.title_minutes,
        cluster_mb=args.cluster_mb,
        disk_count=args.disk_count,
        disk_capacity_mb=args.disk_capacity_mb,
        prefix_minutes=args.prefix_minutes,
        partial_floor=args.partial_floor,
        hot_points=args.hot_points,
        check=args.check,
    )
    print(render_placement_comparison(comparison))
    if not comparison.gates_passed:
        print("placement replay gate failed", file=sys.stderr)
        return 1
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_timeline
    from repro.obs.export import (
        export_csv,
        export_jsonl,
        summarize_telemetry,
        telemetry_rows,
    )
    from repro.sim.trace import Tracer
    from repro.storage.video import VideoTitle
    from repro.workload.scenarios import flash_crowd_scenario

    catalog = [
        VideoTitle(f"title-{i:03d}", size_mb=150.0, duration_s=3600.0)
        for i in range(1, args.catalog_size + 1)
    ]
    if args.scenario == "flash-crowd":
        scenario = flash_crowd_scenario(
            GRNET_NODES[0],
            catalog[0],
            viewer_count=args.requests_per_node * len(GRNET_NODES),
            seed=args.seed,
        )
    else:
        scenario = regional_scenario(
            list(GRNET_NODES),
            requests_per_node=args.requests_per_node,
            seed=args.seed,
            catalog=catalog,
        )
    tracer = Tracer(enabled=True)
    hook, telemetry_box = _telemetry_hook(args, label=f"obs:{args.scenario}")
    experiment = ServiceExperiment(
        name="obs",
        scenario=scenario,
        config=ServiceConfig(
            cluster_mb=50.0,
            disk_count=3,
            disk_capacity_mb=250.0,
            max_streams=64,
            use_reported_stats=False,
            observability=True,
            telemetry_period_s=args.sample_period,
            phase_profiling=args.phase_profile,
            **_fast_path_config_kwargs(args),
        ),
        seed=args.seed,
        tracer=tracer,
        service_hook=hook,
    )
    result = run_service_experiment(experiment)
    service = result.service
    _finish_telemetry(args, telemetry_box)

    if args.format == "summary":
        print(
            summarize_telemetry(
                service.obs, service.telemetry, service.spans, tracer
            )
        )
    else:
        rows = telemetry_rows(service.obs, service.telemetry, service.spans)
        if args.out is not None:
            with open(args.out, "w", encoding="utf-8") as handle:
                if args.format == "jsonl":
                    count = export_jsonl(rows, handle)
                    print(f"wrote {count} jsonl rows to {args.out}")
                else:
                    written, skipped = export_csv(rows, handle)
                    print(
                        f"wrote {written} csv rows to {args.out} "
                        f"({skipped} span rows skipped)"
                    )
        elif args.format == "jsonl":
            export_jsonl(rows, sys.stdout)
        else:
            export_csv(rows, sys.stdout)

    if args.trace_out is not None:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            count = tracer.export_jsonl(handle)
        print(f"wrote {count} trace events to {args.trace_out}")

    if args.timeline is not None:
        pairs = service.telemetry.series_for(args.timeline)
        rows = [
            (
                ",".join(str(v) for _, v in sorted(labels.items())) or args.timeline,
                series,
            )
            for labels, series in pairs
        ]
        print(render_timeline(rows, title=f"{args.timeline} timeline"))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.experiments.resilience import (
        render_resilience_report,
        run_resilience_experiment,
    )

    config = None
    if args.telemetry_out is not None or args.phase_profile:
        # Telemetry needs an observability-enabled config; carry the CLI
        # retry knobs over so behaviour matches the default-config path.
        config = ServiceConfig(
            retry_attempts=args.retry_attempts,
            retry_backoff_s=args.retry_backoff,
            session_failover=args.failover,
            failover_backoff_s=args.failover_backoff,
            breaker_threshold=args.breaker_threshold,
            breaker_window_s=args.breaker_window,
            breaker_cooldown_s=args.breaker_cooldown,
            max_stats_age_s=args.max_stats_age,
            observability=True,
            phase_profiling=args.phase_profile,
        )
    hook, telemetry_box = _telemetry_hook(args, label="chaos")
    run = run_resilience_experiment(
        seed=args.seed,
        duration_s=args.duration_hours * 3600.0,
        requests_per_node=args.requests_per_node,
        link_flap_rate_per_h=args.link_flap_rate,
        link_degrade_rate_per_h=args.link_degrade_rate,
        server_crash_rate_per_h=args.server_crash_rate,
        disk_failure_rate_per_h=args.disk_failure_rate,
        snmp_blackout_rate_per_h=args.snmp_blackout_rate,
        mean_fault_duration_s=args.mean_fault_duration,
        retry_attempts=args.retry_attempts,
        retry_backoff_s=args.retry_backoff,
        session_failover=args.failover,
        failover_backoff_s=args.failover_backoff,
        breaker_threshold=args.breaker_threshold,
        breaker_window_s=args.breaker_window,
        breaker_cooldown_s=args.breaker_cooldown,
        max_stats_age_s=args.max_stats_age,
        config=config,
        service_hook=hook,
    )
    _finish_telemetry(args, telemetry_box)
    report = run.report
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_resilience_report(report))
    if args.show_faults:
        print()
        for entry in run.injector.log:
            print(
                f"{entry['at_s']:10.1f} s  {entry['action']:<7} "
                f"{entry['kind']:<14} {entry['target']}"
            )
    failed_gate = False
    if (
        args.min_availability is not None
        and report.availability < args.min_availability
    ):
        print(
            f"availability {report.availability:.2%} below floor "
            f"{args.min_availability:.2%}",
            file=sys.stderr,
        )
        failed_gate = True
    recovered_total = report.recovered_sessions + report.sessions_failed_over
    if args.min_recovered is not None and recovered_total < args.min_recovered:
        print(
            f"recovered sessions {recovered_total} below floor "
            f"{args.min_recovered}",
            file=sys.stderr,
        )
        failed_gate = True
    if (
        args.max_p95_stall_s is not None
        and report.p95_stall_s > args.max_p95_stall_s
    ):
        print(
            f"p95 stall {report.p95_stall_s:.1f} s above bound "
            f"{args.max_p95_stall_s:.1f} s",
            file=sys.stderr,
        )
        failed_gate = True
    return 1 if failed_gate else 0


def _cmd_export_grnet(path: str, time_label: Optional[str]) -> int:
    from repro.io import save_topology
    from repro.network.grnet import apply_traffic_sample, build_grnet_topology

    topology = build_grnet_topology()
    if time_label is not None:
        apply_traffic_sample(topology, time_label)
    save_topology(topology, path)
    print(f"wrote {topology.node_count} nodes / {topology.link_count} links to {path}")
    return 0


def _cmd_sweep_cluster_size(jobs: Optional[int] = None) -> int:
    # Imported lazily: the helper lives with the benchmarks' scenario code.
    from repro.core.session import MIN_TRANSFER_MBPS
    from repro.experiments.sweeps import better_source_sweep

    rows = []
    for cluster_mb, record in better_source_sweep(jobs=jobs):
        duration_h = (record.completed_at - record.request.submitted_at) / 3600.0
        rows.append(
            [
                f"{cluster_mb:.0f}",
                str(len(record.clusters)),
                str(record.switch_count),
                f"{duration_h:.2f}",
                f"{record.stall_s / 60.0:.1f}",
            ]
        )
    print(
        render_table(
            ["c (MB)", "clusters", "switches", "download (h)", "stall (min)"],
            rows,
            title=(
                "Cluster-size sweep: 1.5 GB title, route congests at "
                f"t+20 min (floor rate {MIN_TRANSFER_MBPS} Mbps)"
            ),
        )
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "case-study":
            return _cmd_case_study()
        if args.command == "experiment":
            return _cmd_experiment(args.exp_id)
        if args.command == "lvn":
            return _cmd_lvn(args.time, args.normalization_constant)
        if args.command == "simulate":
            return _cmd_simulate(args)
        if args.command == "placement":
            return _cmd_placement(args)
        if args.command == "obs":
            return _cmd_obs(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "sweep-cluster-size":
            return _cmd_sweep_cluster_size(args.jobs)
        if args.command == "export-grnet":
            return _cmd_export_grnet(args.path, args.time)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
