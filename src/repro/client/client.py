"""Client model.

The paper resolves the requesting user's IP address to "the server to whom
the requesting user is directly connected (referred to as home server)".
We model the address book directly: a :class:`Client` carries an address
whose prefix maps to its home server, and :meth:`resolve_home` performs the
paper's IP-to-home-server step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ServiceError


@dataclass(frozen=True)
class Client:
    """A service user attached to one access network.

    Attributes:
        client_id: Unique identifier (also used as RNG stream names).
        address: Dotted address; the first three octets identify the access
            network, i.e. the home server's subnet.
    """

    client_id: str
    address: str

    def __post_init__(self) -> None:
        if not self.client_id:
            raise ServiceError("client_id must be non-empty")
        if self.address.count(".") != 3:
            raise ServiceError(
                f"client address must be dotted-quad, got {self.address!r}"
            )

    @property
    def subnet(self) -> str:
        """The /24 prefix used for home-server resolution."""
        return self.address.rsplit(".", 1)[0]

    def resolve_home(self, subnet_map: Dict[str, str]) -> str:
        """Map this client's subnet to its home server uid.

        Args:
            subnet_map: /24 prefix -> server uid, built at initialisation.

        Raises:
            ServiceError: If the subnet is not served by any video server.
        """
        try:
            return subnet_map[self.subnet]
        except KeyError:
            raise ServiceError(
                f"client {self.client_id!r} at {self.address} belongs to no "
                "registered access network"
            ) from None
