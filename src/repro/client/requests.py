"""Video request lifecycle.

A :class:`VideoRequest` tracks one client's ask from submission to
completion; the streaming session updates it as clusters arrive.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

_request_ids = itertools.count(1)


class RequestStatus(enum.Enum):
    """Lifecycle states of a video request."""

    PENDING = "pending"
    STREAMING = "streaming"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class VideoRequest:
    """One client request for one title.

    Attributes:
        request_id: Unique per-process id.
        client_id: The requesting client.
        home_uid: The client's adjacent server (resolved from its address).
        title_id: The requested title.
        submitted_at: Simulated submission time.
        status: Current lifecycle state.
        failure_reason: Set when ``status`` is FAILED.
    """

    client_id: str
    home_uid: str
    title_id: str
    submitted_at: float
    request_id: int = field(default_factory=lambda: next(_request_ids))
    status: RequestStatus = RequestStatus.PENDING
    failure_reason: Optional[str] = None

    def mark_streaming(self) -> None:
        """Transition to STREAMING (first cluster fetch has begun)."""
        self.status = RequestStatus.STREAMING

    def mark_completed(self) -> None:
        """Transition to COMPLETED (all clusters delivered)."""
        self.status = RequestStatus.COMPLETED

    def mark_failed(self, reason: str) -> None:
        """Transition to FAILED with a reason."""
        self.status = RequestStatus.FAILED
        self.failure_reason = reason

    @property
    def finished(self) -> bool:
        """True in either terminal state."""
        return self.status in (RequestStatus.COMPLETED, RequestStatus.FAILED)
