"""Client layer: clients attached to a home server and their requests."""

from repro.client.client import Client
from repro.client.requests import RequestStatus, VideoRequest

__all__ = ["Client", "RequestStatus", "VideoRequest"]
