"""Per-resource circuit breakers for servers and links.

A :class:`CircuitBreaker` follows the classic three-state machine:

* **closed** — the resource participates normally; failures are counted
  in a sliding window;
* **open** — after ``threshold`` failures inside ``window_s`` the
  resource is held out (servers leave the holder set the VRA polls,
  links get their LVN weight inflated to worst-case) for ``cooldown_s``;
* **half-open** — after the cooldown one probe is admitted again; the
  first success closes the breaker, the first failure re-opens it with a
  fresh cooldown.

The :class:`BreakerBoard` owns one breaker per server uid and per link
name, creates them lazily, and funnels every state transition through a
single ``on_transition`` callback — the service uses it to ride the
existing version-counter/change-journal machinery (availability bumps
for servers, database link touches for links), so cache invalidation
needs no new paths.

All timing runs on the simulation clock: the open→half-open transition
is a scheduled sim event, never a lazy wall-clock check, which keeps
breaker behaviour deterministic and byte-replayable under seeded fault
storms.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional

from repro.errors import ReproError
from repro.obs.registry import MetricsRegistry
from repro.sim.engine import Simulator

#: Breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: ``BreakerBoard`` resource kinds.
KIND_SERVER = "server"
KIND_LINK = "link"

#: Transition callback: ``(kind, target, old_state, new_state)``.
TransitionFn = Callable[[str, str, str, str], None]


class CircuitBreaker:
    """One resource's failure-window state machine (no clock of its own).

    Args:
        key: The guarded resource (server uid or link name), for reports.
        threshold: Failures within the window that trip the breaker.
        window_s: Sliding failure-count window, simulated seconds.
        cooldown_s: Open time before the half-open probe, simulated
            seconds.
    """

    __slots__ = ("key", "threshold", "window_s", "cooldown_s", "state",
                 "opened_at", "_failures")

    def __init__(self, key: str, threshold: int, window_s: float, cooldown_s: float):
        if threshold < 1:
            raise ReproError(f"breaker threshold must be >= 1, got {threshold!r}")
        if not (window_s > 0.0):
            raise ReproError(f"breaker window must be positive, got {window_s!r}")
        if not (cooldown_s > 0.0):
            raise ReproError(f"breaker cooldown must be positive, got {cooldown_s!r}")
        self.key = key
        self.threshold = threshold
        self.window_s = window_s
        self.cooldown_s = cooldown_s
        self.state = BREAKER_CLOSED
        self.opened_at = float("-inf")
        self._failures: Deque[float] = deque()

    @property
    def allowed(self) -> bool:
        """True while the resource may participate (closed or probing)."""
        return self.state != BREAKER_OPEN

    def record_failure(self, now: float) -> bool:
        """Count one failure; returns True when this trips the breaker.

        A failure during the half-open probe re-opens immediately (the
        probe failed); failures while already open refresh the cooldown
        origin so a still-flapping resource never gets probed early.
        """
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_OPEN
            self.opened_at = now
            self._failures.clear()
            return True
        if self.state == BREAKER_OPEN:
            self.opened_at = now
            return False
        failures = self._failures
        floor = now - self.window_s
        while failures and failures[0] < floor:
            failures.popleft()
        failures.append(now)
        if len(failures) >= self.threshold:
            self.state = BREAKER_OPEN
            self.opened_at = now
            failures.clear()
            return True
        return False

    def record_success(self, now: float) -> bool:
        """A successful use; returns True when this closes a probe."""
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED
            return True
        return False

    def half_open(self, now: float) -> bool:
        """Cooldown expiry: open → half-open if the cooldown really
        elapsed (a re-open may have pushed ``opened_at`` forward, in
        which case a newer expiry event is already scheduled)."""
        if self.state != BREAKER_OPEN:
            return False
        if now - self.opened_at < self.cooldown_s - 1e-9:
            return False
        self.state = BREAKER_HALF_OPEN
        return True


class BreakerBoard:
    """Every breaker of one service, with deterministic bookkeeping.

    Args:
        sim: The simulation engine (schedules half-open probes).
        threshold / window_s / cooldown_s: Shared breaker parameters.
        on_transition: Invoked on *every* state change with
            ``(kind, target, old_state, new_state)`` — the service's hook
            into the version-counter machinery.
        registry: Telemetry registry for the ``breaker.*`` counters
            (no-ops when disabled; the deterministic counts below are
            what reports read).
    """

    def __init__(
        self,
        sim: Simulator,
        threshold: int,
        window_s: float,
        cooldown_s: float,
        on_transition: Optional[TransitionFn] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._sim = sim
        self._threshold = threshold
        self._window_s = window_s
        self._cooldown_s = cooldown_s
        self.on_transition = on_transition
        self._servers: Dict[str, CircuitBreaker] = {}
        self._links: Dict[str, CircuitBreaker] = {}
        #: Deterministic transition counts by ``(kind, new_state)``.
        self.opened_by_kind: Dict[str, int] = {KIND_SERVER: 0, KIND_LINK: 0}
        self.closed_by_kind: Dict[str, int] = {KIND_SERVER: 0, KIND_LINK: 0}
        self.half_open_by_kind: Dict[str, int] = {KIND_SERVER: 0, KIND_LINK: 0}
        #: Chronological trip log (bounded by the number of transitions).
        self.log: List[Dict[str, object]] = []
        registry = registry if registry is not None else MetricsRegistry(enabled=False)
        self._m_opened = {
            kind: registry.counter(
                "breaker.opened", subsystem="resilience", labels={"kind": kind},
                description="circuit breakers tripped open",
            )
            for kind in (KIND_SERVER, KIND_LINK)
        }
        self._m_closed = {
            kind: registry.counter(
                "breaker.closed", subsystem="resilience", labels={"kind": kind},
                description="breakers closed by a successful half-open probe",
            )
            for kind in (KIND_SERVER, KIND_LINK)
        }
        self._m_half_open = {
            kind: registry.counter(
                "breaker.half_open", subsystem="resilience", labels={"kind": kind},
                description="breakers entering the half-open probe state",
            )
            for kind in (KIND_SERVER, KIND_LINK)
        }

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def server_allowed(self, uid: str) -> bool:
        """May this server stay in the holder set?"""
        breaker = self._servers.get(uid)
        return breaker is None or breaker.allowed

    def link_open(self, name: str) -> bool:
        """Is this link's breaker open (weight inflated to worst-case)?"""
        breaker = self._links.get(name)
        return breaker is not None and breaker.state == BREAKER_OPEN

    def filter_servers(self, holders: Iterable[str]) -> List[str]:
        """The holder set with breaker-open servers removed.

        Falls back to the unfiltered set when every holder is tripped, so
        breakers degrade routing quality but can never *cause* a failure
        a breaker-less run would not have had.
        """
        holders = list(holders)
        if not self._servers:
            return holders
        filtered = [uid for uid in holders if self.server_allowed(uid)]
        return filtered if filtered else holders

    def server_state(self, uid: str) -> str:
        """Current breaker state for a server (closed when untracked)."""
        breaker = self._servers.get(uid)
        return breaker.state if breaker is not None else BREAKER_CLOSED

    def link_state(self, name: str) -> str:
        """Current breaker state for a link (closed when untracked)."""
        breaker = self._links.get(name)
        return breaker.state if breaker is not None else BREAKER_CLOSED

    @property
    def trip_count(self) -> int:
        """Total open transitions across both kinds."""
        return sum(self.opened_by_kind.values())

    # ------------------------------------------------------------------ #
    # event feeds (wired by the service)
    # ------------------------------------------------------------------ #
    def server_failure(self, uid: str) -> None:
        """One server failure (an offline transition)."""
        self._failure(KIND_SERVER, self._breaker(self._servers, uid), uid)

    def link_failure(self, name: str) -> None:
        """One link failure (an offline transition)."""
        self._failure(KIND_LINK, self._breaker(self._links, name), name)

    def server_success(self, uid: str) -> None:
        """A completed use of the server (closes a half-open probe)."""
        breaker = self._servers.get(uid)
        if breaker is not None and breaker.record_success(self._sim.now):
            self._note(KIND_SERVER, uid, BREAKER_HALF_OPEN, BREAKER_CLOSED)

    def link_success(self, name: str) -> None:
        """A completed transfer over the link (closes a half-open probe)."""
        breaker = self._links.get(name)
        if breaker is not None and breaker.record_success(self._sim.now):
            self._note(KIND_LINK, name, BREAKER_HALF_OPEN, BREAKER_CLOSED)

    def path_success(self, server_uid: str, link_names: Iterable[str]) -> None:
        """A cluster delivered: probe success for the source and its path."""
        self.server_success(server_uid)
        for name in link_names:
            self.link_success(name)

    # ------------------------------------------------------------------ #
    def _breaker(self, table: Dict[str, CircuitBreaker], key: str) -> CircuitBreaker:
        breaker = table.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                key, self._threshold, self._window_s, self._cooldown_s
            )
            table[key] = breaker
        return breaker

    def _failure(self, kind: str, breaker: CircuitBreaker, target: str) -> None:
        was = breaker.state
        if breaker.record_failure(self._sim.now):
            self._note(kind, target, was, BREAKER_OPEN)
            self._sim.schedule(
                breaker.cooldown_s,
                self._probe,
                kind,
                breaker,
                name=f"breaker:{kind}:{target}",
            )

    def _probe(self, kind: str, breaker: CircuitBreaker) -> None:
        if breaker.half_open(self._sim.now):
            self._note(kind, breaker.key, BREAKER_OPEN, BREAKER_HALF_OPEN)
        elif breaker.state == BREAKER_OPEN:
            # A failure while open refreshed the cooldown origin without
            # scheduling a fresh expiry (record_failure returned False
            # there); chase the moved deadline so the breaker can't get
            # stuck open with no probe pending.
            remaining = breaker.opened_at + breaker.cooldown_s - self._sim.now
            self._sim.schedule(
                max(remaining, 0.0),
                self._probe,
                kind,
                breaker,
                name=f"breaker:{kind}:{breaker.key}",
            )

    def _note(self, kind: str, target: str, old: str, new: str) -> None:
        if new == BREAKER_OPEN:
            self.opened_by_kind[kind] += 1
            self._m_opened[kind].inc()
        elif new == BREAKER_CLOSED:
            self.closed_by_kind[kind] += 1
            self._m_closed[kind].inc()
        else:
            self.half_open_by_kind[kind] += 1
            self._m_half_open[kind].inc()
        self.log.append(
            {"at_s": self._sim.now, "kind": kind, "target": target,
             "from": old, "to": new}
        )
        if self.on_transition is not None:
            self.on_transition(kind, target, old, new)
