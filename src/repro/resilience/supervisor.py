"""Mid-stream session failover.

The paper's mid-stream switching only fires at scheduled cluster
boundaries.  The :class:`SessionSupervisor` closes the gap between
boundaries: it keeps an index of every active transfer segment keyed by
serving server and by the links of its delivery path, and the moment a
fault hits one of those resources (server crash, disk failure, path link
offline) it *preempts* the session — cancels its pending transfer-step
event via :meth:`repro.sim.process.Process.poke` — so the session
re-runs the VRA immediately and migrates the remainder of the cluster to
a surviving holder instead of stalling until the boundary (or dying).

A session under failover fails only when no full copy of its title
remains registered anywhere — transient outages (crashed holders that
will recover, saturated stream slots, congested paths) are ridden out
with backoff instead.  Every fail verdict lands in :attr:`failed_log`
with the simulated timestamp; since a lost last copy implies no *online*
full holder either, the property suite can check every entry against
the stronger invariant.

All bookkeeping is plain dicts keyed in insertion order and driven by
the simulation clock, so seeded chaos runs replay bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.database.store import ServiceDatabase
from repro.obs.registry import MetricsRegistry
from repro.server.video_server import VideoServer
from repro.sim.engine import Simulator
from repro.sim.process import Process

if TYPE_CHECKING:  # import cycle: session takes the supervisor as a param
    from repro.core.session import StreamingSession
    from repro.core.vra import VraDecision
    from repro.network.link import Link
    from repro.network.topology import Topology


class SessionSupervisor:
    """Index of active sessions by the resources currently serving them.

    The service constructs one when ``ServiceConfig.session_failover`` is
    on, adopts every session process it spawns, and routes fault events
    (server/link state changes, disk failures) into it.  Sessions call
    :meth:`track` / :meth:`untrack` around each transfer segment and use
    the supervisor as their failover-control surface (:attr:`backoff_s`,
    :meth:`holder_online`, :meth:`note_failover`, :meth:`note_failed`).

    Args:
        sim: The simulation engine.
        servers: The service's servers by node uid.
        database: The service database (full-holder lookups).
        topology: The network (resolves decision paths to link names).
        backoff_s: Wait between failover re-decide attempts while holders
            exist but none is currently usable (e.g. stream slots full).
        registry: Telemetry registry for the ``resilience.*`` instruments
            (deterministic counters below are what reports read).
    """

    def __init__(
        self,
        sim: Simulator,
        servers: Dict[str, VideoServer],
        database: ServiceDatabase,
        topology: "Topology",
        backoff_s: float = 15.0,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._sim = sim
        self._servers = servers
        self._database = database
        self._topology = topology
        self.backoff_s = backoff_s
        self._procs: Dict["StreamingSession", Process] = {}
        #: session -> (server uid, link names) of the in-flight segment.
        self._tracked: Dict["StreamingSession", Tuple[str, Tuple[str, ...]]] = {}
        self._by_server: Dict[str, Dict["StreamingSession", None]] = {}
        self._by_link: Dict[str, Dict["StreamingSession", None]] = {}
        #: Deterministic counters and logs (reports + property suites).
        self.preemption_count = 0
        self.failover_count = 0
        self.failed_count = 0
        self.stall_log: List[float] = []
        #: One entry per session failed for want of an online full holder:
        #: ``{"at_s", "title_id", "reason"}``, chronological.
        self.failed_log: List[Dict[str, object]] = []
        registry = registry if registry is not None else MetricsRegistry(enabled=False)
        self._m_preemptions = registry.counter(
            "resilience.preemptions", subsystem="resilience",
            description="transfer segments preempted by a fault on their path",
        )
        self._m_failovers = registry.counter(
            "resilience.failovers", subsystem="resilience",
            description="mid-stream migrations to a surviving holder",
        )
        self._m_failover_stall = registry.histogram(
            "resilience.failover_stall_s", subsystem="resilience",
            description="stall seconds per mid-stream failover",
        )
        self._m_failed = registry.counter(
            "resilience.failover_failed", subsystem="resilience",
            description="sessions failed with no online full holder left",
        )

    # ------------------------------------------------------------------ #
    # session registry (service + session call sites)
    # ------------------------------------------------------------------ #
    def adopt(self, session: "StreamingSession", process: Process) -> None:
        """Register the process driving ``session`` (enables preemption)."""
        self._procs[session] = process

    def track(self, session: "StreamingSession", decision: "VraDecision") -> None:
        """Index a transfer segment by its source server and path links."""
        self.untrack(session)
        if decision.served_locally or decision.path.hop_count == 0:
            links: Tuple[str, ...] = ()
        else:
            links = tuple(
                link.name for link in self._topology.path_links(decision.path.nodes)
            )
        uid = decision.chosen_uid
        self._tracked[session] = (uid, links)
        self._by_server.setdefault(uid, {})[session] = None
        for name in links:
            self._by_link.setdefault(name, {})[session] = None

    def untrack(self, session: "StreamingSession") -> None:
        """Drop the session's segment index entry (segment over)."""
        entry = self._tracked.pop(session, None)
        if entry is None:
            return
        uid, links = entry
        bucket = self._by_server.get(uid)
        if bucket is not None:
            bucket.pop(session, None)
            if not bucket:
                del self._by_server[uid]
        for name in links:
            bucket = self._by_link.get(name)
            if bucket is not None:
                bucket.pop(session, None)
                if not bucket:
                    del self._by_link[name]

    def discard(self, session: "StreamingSession") -> None:
        """Forget a finished session entirely."""
        self.untrack(session)
        self._procs.pop(session, None)

    @property
    def tracked_count(self) -> int:
        """Active transfer segments currently indexed."""
        return len(self._tracked)

    # ------------------------------------------------------------------ #
    # fault-event intake (service + injector call sites)
    # ------------------------------------------------------------------ #
    def on_server_state(self, server: VideoServer) -> None:
        """A server flipped online state; preempt its sessions if down."""
        if server.online:
            return
        self._preempt_bucket(
            self._by_server.get(server.node_uid), f"server:{server.node_uid}"
        )

    def on_link_state(self, link: "Link") -> None:
        """A link flipped online state; preempt path users if down."""
        if link.online:
            return
        self._preempt_bucket(self._by_link.get(link.name), f"link:{link.name}")

    def on_disk_failure(self, server_uid: str) -> None:
        """A disk died; preempt sessions whose title it made unservable."""
        bucket = self._by_server.get(server_uid)
        if not bucket:
            return
        server = self._servers.get(server_uid)
        for session in list(bucket):
            if server is None or not server.has_title(session.title_id):
                self._preempt(session, f"disk:{server_uid}")

    def _preempt_bucket(
        self, bucket: Optional[Dict["StreamingSession", None]], reason: str
    ) -> None:
        if not bucket:
            return
        for session in list(bucket):
            self._preempt(session, reason)

    def _preempt(self, session: "StreamingSession", reason: str) -> None:
        session.preempt(reason)
        self.preemption_count += 1
        self._m_preemptions.inc()
        process = self._procs.get(session)
        if process is not None:
            # Best-effort: a session between delay events (its wake is
            # already queued at this timestamp) sees the preempt flag on
            # that wake instead.
            process.poke(reason)

    # ------------------------------------------------------------------ #
    # failover-control surface (session call sites)
    # ------------------------------------------------------------------ #
    def holder_exists(self, title_id: str) -> bool:
        """Is a full copy of the title still registered anywhere?

        The session's fail-or-wait verdict: a routing failure while a
        full holder remains (crashed but recovering, slots full, path
        congested) is transient — keep stalling.  Only when the last
        full copy is gone does the session fail (and the verdict is
        logged); by then :meth:`holder_online` is necessarily False
        too, which is the invariant the property suite checks.
        """
        return bool(self._database.servers_with_title(title_id, min_fraction=1.0))

    def holder_online(self, title_id: str) -> bool:
        """Does any online, servable full holder exist right now?

        Strictly stronger than :meth:`holder_exists`; the property
        suite asserts no session ever failed at an instant this was
        True.
        """
        for uid in self._database.servers_with_title(title_id, min_fraction=1.0):
            server = self._servers.get(uid)
            if server is not None and server.online and server.has_title(title_id):
                return True
        return False

    def note_failover(self, stall_s: float) -> None:
        """A session migrated mid-stream after ``stall_s`` of stall."""
        self.failover_count += 1
        self.stall_log.append(stall_s)
        self._m_failovers.inc()
        self._m_failover_stall.observe(stall_s)

    def note_failed(self, title_id: str, reason: str) -> None:
        """A session is about to fail: no online full holder remained."""
        self.failed_count += 1
        self.failed_log.append(
            {"at_s": self._sim.now, "title_id": title_id, "reason": reason}
        )
        self._m_failed.inc()

    # ------------------------------------------------------------------ #
    def report(self) -> Dict[str, object]:
        """Deterministic summary for experiment reports."""
        return {
            "preemptions": self.preemption_count,
            "failovers": self.failover_count,
            "failover_stall_s_total": sum(self.stall_log),
            "failed_no_holder": self.failed_count,
        }
