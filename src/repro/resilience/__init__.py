"""Reactive resilience: session failover, circuit breakers, staleness guard.

The package turns fault *events* into session *recoveries*:

* :class:`~repro.resilience.supervisor.SessionSupervisor` indexes active
  streaming sessions by serving server and by the links of their current
  delivery path, preempts them the moment a fault hits one of those
  resources, and migrates the stream to a surviving holder;
* :class:`~repro.resilience.breaker.BreakerBoard` keeps one
  :class:`~repro.resilience.breaker.CircuitBreaker` per server and per
  link so flapping resources are held out of VRA polls and LVN weights
  until a cooldown probe proves them healthy again;
* :class:`~repro.resilience.staleness.StalenessGuard` inflates the LVN
  weights of links whose SNMP sample is older than ``max_stats_age_s``
  (blackouts included) and marks the resulting decisions ``degraded``.

Everything here is driven by the simulation clock and plain counters, so
seeded chaos runs replay bit-for-bit; with the corresponding
:class:`~repro.core.service.ServiceConfig` knobs at their defaults none
of these objects is even constructed and legacy runs stay byte-identical.
"""

from repro.resilience.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerBoard,
    CircuitBreaker,
)
from repro.resilience.staleness import StalenessGuard
from repro.resilience.supervisor import SessionSupervisor

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerBoard",
    "CircuitBreaker",
    "SessionSupervisor",
    "StalenessGuard",
]
