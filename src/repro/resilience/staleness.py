"""Staleness guard over the SNMP-fed link statistics.

The paper's VRA trusts the reported link usage in the service database.
During an ``SnmpBlackout`` — or whenever a sample is simply older than
``max_stats_age_s`` — that trust is misplaced: the stats describe a
network that may no longer exist.  Instead of routing confidently on
dead data, the :class:`StalenessGuard` conservatively *inflates* the
weight of every age-expired link by shrinking its apparent headroom::

    used' = capacity - (capacity - used) / factor

so a link with a fresh sample keeps its real weight while a stale one
looks ``factor``× more loaded than last reported — paths over stale
links are still usable (the network never partitions) but lose
tie-breaks against freshly-measured ones.  Decisions taken while any
link is stale are marked ``degraded`` by the service.

The stale set is recomputed on a periodic simulated-clock tick and after
every SNMP collection round; whenever membership changes the guard
reports the changed links so the service can
:meth:`~repro.database.store.ServiceDatabase.touch_links` them — the
existing epoch/delta invalidation machinery then repairs exactly those
weights, and no new cache-invalidation path is needed.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional, Set

from repro.database.store import ServiceDatabase
from repro.errors import ReproError
from repro.network.link import Link
from repro.network.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTask

#: Changed-membership callback: the link names entering or leaving the
#: stale set this refresh.
ChangeFn = Callable[[List[str]], None]


class StalenessGuard:
    """Tracks which links have age-expired SNMP samples.

    Args:
        sim: Simulation engine (clock + periodic tick).
        database: The service database the SNMP collector writes to.
        topology: The network whose links are guarded.
        max_age_s: A sample older than this is stale.  A link that never
            received a sample (timestamp 0.0 baseline) ages like any
            other, so a blackout from t=0 trips the guard too.
        inflation_factor: Headroom divisor for stale links (> 1).
        check_period_s: Spacing of the periodic refresh tick.
        on_change: Invoked with the sorted list of links whose staleness
            flipped — the service routes this into ``touch_links``.
    """

    def __init__(
        self,
        sim: Simulator,
        database: ServiceDatabase,
        topology: Topology,
        max_age_s: float,
        inflation_factor: float = 4.0,
        check_period_s: float = 60.0,
        on_change: Optional[ChangeFn] = None,
    ):
        if not (max_age_s > 0.0):
            raise ReproError(f"max_stats_age_s must be positive, got {max_age_s!r}")
        if not (inflation_factor > 1.0):
            raise ReproError(
                f"stale inflation factor must exceed 1.0, got {inflation_factor!r}"
            )
        if not (check_period_s > 0.0):
            raise ReproError(
                f"staleness check period must be positive, got {check_period_s!r}"
            )
        self._sim = sim
        self._database = database
        self._topology = topology
        self.max_age_s = max_age_s
        self.inflation_factor = inflation_factor
        self._stale: Set[str] = set()
        self.on_change = on_change
        #: Number of refreshes that changed the stale set (for reports).
        self.transition_count = 0
        self._task = PeriodicTask(sim, check_period_s, self._tick, name="staleness-guard")

    # ------------------------------------------------------------------ #
    def start(self) -> "StalenessGuard":
        """Arm the periodic refresh (first tick one period from now)."""
        self._task.start()
        return self

    @property
    def degraded(self) -> bool:
        """True while any guarded link is stale."""
        return bool(self._stale)

    @property
    def stale_count(self) -> int:
        """Number of currently stale links (feeds ``snmp.stale_links``)."""
        return len(self._stale)

    @property
    def stale_links(self) -> FrozenSet[str]:
        """The current stale set (a snapshot-safe frozen copy)."""
        return frozenset(self._stale)

    def is_stale(self, link_name: str) -> bool:
        """Is this link's latest sample older than ``max_stats_age_s``?"""
        return link_name in self._stale

    def adjusted_used(self, link: Link, used_mbps: float) -> float:
        """The conservative used-bandwidth figure for weight computation.

        Fresh links pass through untouched; stale links keep only
        ``1/factor`` of their last-reported headroom.  The input is
        clamped to capacity first so an over-reported link cannot come
        out *less* loaded than reported.
        """
        if link.name not in self._stale:
            return used_mbps
        capacity = link.capacity_mbps
        headroom = capacity - min(used_mbps, capacity)
        return capacity - headroom / self.inflation_factor

    # ------------------------------------------------------------------ #
    def refresh(self) -> List[str]:
        """Recompute the stale set; returns the links whose state flipped.

        Also invokes ``on_change`` (inside the refresh, before returning)
        when membership moved, so epoch counters bump in the same event
        that observed the flip.
        """
        now = self._sim.now
        floor = now - self.max_age_s
        stale_now: Set[str] = set()
        for link in self._topology.links():
            stats = self._database.link_entry(link.name).latest_stats
            sampled_at = stats.timestamp if stats is not None else 0.0
            if sampled_at < floor:
                stale_now.add(link.name)
        changed = sorted(stale_now.symmetric_difference(self._stale))
        if changed:
            self._stale = stale_now
            self.transition_count += 1
            if self.on_change is not None:
                self.on_change(changed)
        return changed

    def _tick(self) -> None:
        self.refresh()
