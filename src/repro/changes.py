"""Bounded change journals for delta-scoped invalidation.

PR 1's epoch-versioned routing cache answers *whether* any routing input
changed (a version counter moved); this module answers *which* inputs
changed, so the cache can patch the handful of affected entries instead
of flushing everything.

A :class:`ChangeJournal` is an append-only, capacity-bounded log of
``(key, kind)`` change records kept by the mutated layer (the topology
logs link state/traffic changes, the service database logs reported-stat
changes).  Consumers hold an integer *cursor* — the sequence number of
the last record they have incorporated — and ask :meth:`ChangeJournal.since`
for everything recorded after it.  Multiple independent consumers can
read the same journal; draining is a property of the cursor, not the
journal.

The journal is deliberately lossy at the tail: once more than
``capacity`` records accumulate, the oldest are dropped and any consumer
whose cursor predates the drop is told ``None`` ("I can no longer
enumerate your delta").  ``None`` is the signal to fall back to a full
recompute — exactly PR 1's whole-epoch invalidation — so an overflowing
journal degrades to correct-but-slower, never to wrong.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, FrozenSet, Optional, Tuple

from repro.errors import ReproError

#: Default record bound; sized far above any realistic between-decision
#: churn (GRNET has 7 links; the synthetic benchmark backbone ~120).
DEFAULT_JOURNAL_CAPACITY = 4096


class ChangeJournal:
    """Append-only bounded log of ``(key, kind)`` change records.

    Args:
        capacity: Maximum records retained; older records are dropped and
            consumers that still needed them receive the overflow signal.
    """

    def __init__(self, capacity: int = DEFAULT_JOURNAL_CAPACITY):
        if capacity < 1:
            raise ReproError(f"journal capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._entries: Deque[Tuple[int, str, str]] = deque()
        self._head = 0  # sequence number of the newest record (0 = none yet)
        self._dropped_through = 0  # highest sequence number ever dropped

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def head(self) -> int:
        """Sequence number of the newest record (a fresh cursor position)."""
        return self._head

    def record(self, key: str, kind: str = "") -> None:
        """Append one change record, evicting the oldest past capacity.

        Every change appends — even an immediate repeat of the previous
        record.  Collapsing repeats would be unsound: a consumer whose
        cursor already passed the earlier record would never learn about
        the new change.  Repeat-heavy churn is bounded by ``capacity``
        and deduplicated at drain time (:meth:`since` returns a set).
        """
        self._head += 1
        self._entries.append((self._head, key, kind))
        while len(self._entries) > self.capacity:
            self._dropped_through = self._entries.popleft()[0]

    def since(
        self,
        cursor: int,
        kinds: Optional[Tuple[str, ...]] = None,
    ) -> Tuple[int, Optional[FrozenSet[str]]]:
        """Keys recorded after ``cursor``, and the new cursor position.

        Args:
            cursor: Sequence number of the last record the caller has
                incorporated (``0`` for a consumer starting at the
                journal's creation; :attr:`head` for one starting now).
            kinds: When given, only records of these kinds are returned;
                other records still advance the cursor.

        Returns:
            ``(new_cursor, keys)`` where ``keys`` is a frozenset of
            changed keys, or ``None`` when records after ``cursor`` have
            already been dropped — the caller must treat *everything* as
            potentially changed.
        """
        if cursor < self._dropped_through:
            return self._head, None
        keys = []
        for seq, key, kind in reversed(self._entries):
            if seq <= cursor:
                break
            if kinds is None or kind in kinds:
                keys.append(key)
        return self._head, frozenset(keys)


class JournalCursor:
    """One consumer's drain position on a :class:`ChangeJournal`.

    Wraps the ``(journal, integer cursor)`` pair every consumer otherwise
    threads by hand: :meth:`drain` returns the keys recorded since the
    previous drain (or ``None`` on overflow, exactly as
    :meth:`ChangeJournal.since`) and advances the position in place.

    Args:
        journal: The journal to follow.
        kinds: Optional record-kind filter applied to every drain.
        from_head: Start at the journal's current head (skip history);
            False starts at sequence 0 and replays everything.
    """

    def __init__(
        self,
        journal: ChangeJournal,
        kinds: Optional[Tuple[str, ...]] = None,
        from_head: bool = True,
    ):
        self._journal = journal
        self._kinds = kinds
        self._cursor = journal.head if from_head else 0

    @property
    def position(self) -> int:
        """The sequence number of the last record incorporated."""
        return self._cursor

    def drain(self) -> Optional[FrozenSet[str]]:
        """Keys changed since the last drain; ``None`` means overflow."""
        self._cursor, keys = self._journal.since(self._cursor, kinds=self._kinds)
        return keys
