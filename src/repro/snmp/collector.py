"""The periodic SNMP statistics modules.

:class:`NodeStatisticsModule` reproduces the paper's per-server module:
"Every time a predefined time limit expires (1-2 minutes ...) the SMNP
statistics module on every server is responsible for inserting the line
utilization of all the adjacent to the node links used by the VoD network."

:class:`StatisticsService` instantiates one module per node and drives them
all from one periodic task.  Because every link has two endpoints, each link
entry is written twice per period — exactly the benign redundancy the
paper's design implies (last write wins).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.database.access import DatabaseHandle
from repro.database.records import LinkStats
from repro.errors import SnmpError
from repro.network.topology import Topology
from repro.obs.phase import NO_PHASE_TIMER
from repro.obs.registry import NULL_COUNTER, MetricsRegistry
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTask
from repro.snmp.agent import SnmpAgent
from repro.snmp.counters import counter_delta, delta_to_mbps

#: The paper suggests 1-2 minutes; 90 s is the midpoint default.
DEFAULT_POLL_PERIOD_S = 90.0


class NodeStatisticsModule:
    """One node's statistics module: polls the local agent, writes the DB."""

    def __init__(
        self,
        topology: Topology,
        node_uid: str,
        admin_db: DatabaseHandle,
        start_time: float = 0.0,
    ):
        self._topology = topology
        self.node_uid = node_uid
        self._db = admin_db
        self._agent = SnmpAgent(topology, node_uid, start_time=start_time)
        self._previous: Optional[Tuple[float, Dict[str, Tuple[int, int]]]] = None
        self.samples_written = 0
        #: Writes whose ``used_mbps`` differed from the entry's previous
        #: value — the only writes that dirty the routing delta journal.
        self.changed_samples = 0

    @property
    def agent(self) -> SnmpAgent:
        """The underlying SNMP agent (exposed for tests)."""
        return self._agent

    def collect(self, now: float) -> Dict[str, LinkStats]:
        """Poll the agent and write per-link utilisation into the database.

        The first poll only establishes the counter baseline; rates are
        produced from the second poll onward, like any real SNMP poller.

        Returns:
            The stats written this round, keyed by link name (empty on the
            baseline poll).
        """
        counters = self._agent.poll(now)
        written: Dict[str, LinkStats] = {}
        if self._previous is not None:
            prev_time, prev_counters = self._previous
            interval = now - prev_time
            if interval <= 0.0:
                raise SnmpError(
                    f"statistics module at {self.node_uid!r}: non-positive "
                    f"poll interval {interval}"
                )
            for link_name, (in_now, out_now) in counters.items():
                # A link first seen this round (runtime expansion) has no
                # baseline yet; treat the current reading as its baseline.
                in_prev, out_prev = prev_counters.get(link_name, (in_now, out_now))
                octets = counter_delta(in_prev, in_now) + counter_delta(out_prev, out_now)
                used_mbps = delta_to_mbps(octets, interval)
                entry = self._db.link_entry(link_name)
                stats = LinkStats(
                    used_mbps=used_mbps,
                    utilization=min(used_mbps / entry.total_bandwidth_mbps, 1.0),
                    timestamp=now,
                )
                if used_mbps != entry.used_mbps:
                    self.changed_samples += 1
                self._db.update_link_stats(link_name, stats)
                written[link_name] = stats
                self.samples_written += 1
        self._previous = (now, counters)
        return written


class StatisticsService:
    """Drives every node's statistics module on a shared period."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        admin_db: DatabaseHandle,
        period_s: float = DEFAULT_POLL_PERIOD_S,
    ):
        if not (period_s > 0.0):
            raise SnmpError(f"poll period must be positive, got {period_s!r}")
        self._sim = sim
        self._topology = topology
        self._db = admin_db
        self._modules: List[NodeStatisticsModule] = [
            NodeStatisticsModule(topology, node.uid, admin_db, start_time=sim.now)
            for node in topology.nodes()
        ]
        self._task = PeriodicTask(sim, period_s, self._collect_all, name="snmp")
        #: Nesting depth of active blackouts (overlapping fault windows
        #: stack); collection rounds are skipped whole while > 0.
        self._blackout_depth = 0
        #: Collection rounds skipped because a blackout was active.
        self.blackout_skips = 0
        self._m_rounds = NULL_COUNTER
        #: Wall-clock timer around one collection round
        #: (obs.phase.snmp_collect_ms); the service swaps in a live
        #: timer when phase profiling is on.
        self.phase_timer = NO_PHASE_TIMER
        self._m_samples = NULL_COUNTER
        self._m_changed = NULL_COUNTER
        self._m_blackout_skips = NULL_COUNTER
        #: Optional listener fired after each successful (non-blacked-out)
        #: collection round.  The service wires the staleness guard's
        #: refresh here so fresh samples clear degraded routing in the
        #: same event that wrote them; blackout-skipped rounds do not
        #: fire it (the guard's own periodic check covers the gap).
        self.on_round: Optional[Callable[[], None]] = None

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Resolve the collection-round / sample counters from a registry."""
        self._m_rounds = registry.counter(
            "snmp.rounds", subsystem="snmp",
            description="collection rounds across all statistics modules",
        )
        self._m_samples = registry.counter(
            "snmp.samples_written", subsystem="snmp",
            description="per-link stats entries written to the database",
        )
        self._m_changed = registry.counter(
            "snmp.changed_samples", subsystem="snmp",
            description="stats writes whose used_mbps differed from the "
            "previous entry (the ones that dirty the routing delta journal)",
        )
        self._m_blackout_skips = registry.counter(
            "fault.snmp_blackout_skips", subsystem="snmp",
            description="collection rounds skipped by an injected blackout "
            "(the database serves stale stats meanwhile)",
        )

    def add_node(self, node_uid: str) -> NodeStatisticsModule:
        """Start a statistics module for a node added at runtime."""
        module = NodeStatisticsModule(
            self._topology, node_uid, self._db, start_time=self._sim.now
        )
        self._modules.append(module)
        return module

    @property
    def modules(self) -> List[NodeStatisticsModule]:
        """The per-node statistics modules."""
        return list(self._modules)

    @property
    def period_s(self) -> float:
        """Current poll period in simulated seconds."""
        return self._task.period

    def start(self) -> None:
        """Begin periodic collection; also takes the baseline poll now."""
        self._collect_all()
        self._task.start()

    def stop(self) -> None:
        """Stop periodic collection."""
        self._task.stop()

    # ------------------------------------------------------------------ #
    # blackout (fault-injection surface)
    # ------------------------------------------------------------------ #
    @property
    def blacked_out(self) -> bool:
        """True while at least one injected blackout window is active."""
        return self._blackout_depth > 0

    def blackout(self) -> None:
        """Enter a collector blackout: rounds are skipped whole, agents
        are not even polled, and the limited-access database keeps
        serving its last-written (stale) stats.  Windows nest."""
        self._blackout_depth += 1

    def restore(self) -> None:
        """Leave one blackout window; collection resumes at depth zero.

        The first round after restoration spans the whole dark period
        (counter deltas average over it), exactly like a real poller
        recovering from an outage.
        """
        if self._blackout_depth > 0:
            self._blackout_depth -= 1

    def _collect_all(self) -> None:
        if self._blackout_depth > 0:
            self.blackout_skips += 1
            self._m_blackout_skips.inc()
            return
        t_phase = self.phase_timer.start()
        try:
            now = self._sim.now
            self._m_rounds.inc()
            for module in self._modules:
                changed_before = module.changed_samples
                self._m_samples.inc(len(module.collect(now)))
                self._m_changed.inc(module.changed_samples - changed_before)
        finally:
            self.phase_timer.stop(t_phase)
        if self.on_round is not None:
            self.on_round()
