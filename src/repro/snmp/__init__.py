"""Simulated SNMP statistics substrate.

The paper's "SMNP statistics module" (read: SNMP) runs on every server and,
every 1-2 minutes, inserts the utilisation of all links adjacent to the node
into the limited-access database.  Here that becomes:

* :mod:`repro.snmp.counters` — ifInOctets/ifOutOctets-style 32-bit wrapping
  octet counters;
* :mod:`repro.snmp.agent` — a per-node agent integrating link traffic into
  those counters;
* :mod:`repro.snmp.collector` — the periodic statistics module that polls
  the agent, converts counter deltas to Mbps / utilisation per the paper's
  eq. (5), and writes :class:`~repro.database.records.LinkStats` entries.
"""

from repro.snmp.agent import SnmpAgent
from repro.snmp.collector import NodeStatisticsModule, StatisticsService
from repro.snmp.counters import COUNTER32_MODULUS, OctetCounter, counter_delta

__all__ = [
    "COUNTER32_MODULUS",
    "NodeStatisticsModule",
    "OctetCounter",
    "SnmpAgent",
    "StatisticsService",
    "counter_delta",
]
