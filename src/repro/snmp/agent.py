"""Per-node SNMP agent.

An :class:`SnmpAgent` lives on one network node and exposes octet counters
for every adjacent link — the view a real poller would get from the node's
router.  Traffic is integrated from the link's current used bandwidth each
time the agent is advanced, which matches how piecewise-constant rates
evolve between simulation events.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import SnmpError
from repro.network.topology import Topology
from repro.snmp.counters import OctetCounter


class SnmpAgent:
    """Counter-bearing agent for one node's adjacent links.

    In and out octets are modelled symmetrically (the link's used bandwidth
    aggregates both directions, exactly as the paper's Table 2 reports one
    traffic figure per link), so each direction carries half the traffic.
    """

    def __init__(self, topology: Topology, node_uid: str, start_time: float = 0.0):
        topology.node(node_uid)  # validate
        self._topology = topology
        self.node_uid = node_uid
        self._last_advance = float(start_time)
        self._in_counters: Dict[str, OctetCounter] = {}
        self._out_counters: Dict[str, OctetCounter] = {}
        for link in topology.links_at(node_uid):
            self._in_counters[link.name] = OctetCounter()
            self._out_counters[link.name] = OctetCounter()

    @property
    def link_names(self) -> List[str]:
        """Names of the links this agent instruments, sorted."""
        return sorted(self._in_counters)

    def advance(self, now: float) -> None:
        """Integrate traffic at the links' current rates up to ``now``.

        Raises:
            SnmpError: If time moves backwards.
        """
        if now < self._last_advance:
            raise SnmpError(
                f"agent at {self.node_uid!r}: time went backwards "
                f"({now} < {self._last_advance})"
            )
        elapsed = now - self._last_advance
        self._last_advance = now
        if elapsed == 0.0:
            return
        for link in self._topology.links_at(self.node_uid):
            self._ensure_counters(link.name)
            megabits = link.used_mbps * elapsed
            # Split the aggregate figure evenly across the two directions.
            self._in_counters[link.name].add_megabits(megabits / 2.0)
            self._out_counters[link.name].add_megabits(megabits / 2.0)

    def _ensure_counters(self, link_name: str) -> None:
        """Lazily instrument links attached after the agent was created
        (the service's runtime-expansion path adds interfaces)."""
        if link_name not in self._in_counters:
            self._in_counters[link_name] = OctetCounter()
            self._out_counters[link_name] = OctetCounter()

    def poll(self, now: float) -> Dict[str, Tuple[int, int]]:
        """Advance to ``now`` and return {link name: (in octets, out octets)}.

        This is the agent's whole SNMP surface: 32-bit counter values only,
        never rates — rate recovery is the collector's job.
        """
        self.advance(now)
        return {
            name: (self._in_counters[name].value, self._out_counters[name].value)
            for name in self._in_counters
        }
