"""SNMP-style octet counters.

Real routers expose traffic as monotonically increasing 32-bit octet
counters (ifInOctets / ifOutOctets) that wrap at 2**32; pollers recover the
rate from the delta between two polls, correcting for at most one wrap.
This module reproduces that mechanism so the collector math is exercised the
way a real deployment would exercise it.
"""

from __future__ import annotations

from repro.errors import SnmpError

#: Counter32 wraps at 2**32 per RFC 2578.
COUNTER32_MODULUS = 2**32


class OctetCounter:
    """A wrapping Counter32 of transferred octets."""

    __slots__ = ("_value", "_wraps")

    def __init__(self, initial: int = 0):
        if initial < 0:
            raise SnmpError(f"counter cannot start negative, got {initial}")
        self._value = initial % COUNTER32_MODULUS
        self._wraps = initial // COUNTER32_MODULUS

    @property
    def value(self) -> int:
        """Current 32-bit counter value, in [0, 2**32)."""
        return self._value

    @property
    def wraps(self) -> int:
        """How many times the counter has wrapped (not visible via SNMP)."""
        return self._wraps

    def add_octets(self, octets: int) -> int:
        """Advance the counter by a non-negative octet count.

        Returns:
            The new 32-bit value.

        Raises:
            SnmpError: If ``octets`` is negative.
        """
        if octets < 0:
            raise SnmpError(f"cannot add negative octets ({octets})")
        total = self._value + octets
        self._wraps += total // COUNTER32_MODULUS
        self._value = total % COUNTER32_MODULUS
        return self._value

    def add_megabits(self, megabits: float) -> int:
        """Advance by traffic expressed in megabits (1 Mbit = 125000 octets)."""
        return self.add_octets(int(round(megabits * 1e6 / 8.0)))

    def __repr__(self) -> str:
        return f"OctetCounter(value={self._value}, wraps={self._wraps})"


def counter_delta(previous: int, current: int) -> int:
    """Octets transferred between two polls of a Counter32.

    Assumes at most one wrap between polls, the standard SNMP poller
    assumption (poll periods of 1-2 minutes make multiple wraps impossible
    on the paper's 2-18 Mbps links).

    Raises:
        SnmpError: If either value is outside [0, 2**32).
    """
    for value in (previous, current):
        if not (0 <= value < COUNTER32_MODULUS):
            raise SnmpError(f"counter value {value} outside Counter32 range")
    if current >= previous:
        return current - previous
    return current + COUNTER32_MODULUS - previous


def delta_to_mbps(octets: int, interval_s: float) -> float:
    """Convert an octet delta over an interval to megabits per second.

    Raises:
        SnmpError: If the interval is not positive.
    """
    if not (interval_s > 0.0):
        raise SnmpError(f"poll interval must be positive, got {interval_s!r}")
    return octets * 8.0 / 1e6 / interval_s
