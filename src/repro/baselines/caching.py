"""Cache-policy baselines for the DMA comparison (DESIGN.md X2).

Each policy exposes the DMA's surface — ``on_request(video) -> DmaResult``
and ``seed(video)`` — over the same :class:`~repro.storage.array.DiskArray`,
so :meth:`repro.server.video_server.VideoServer.set_cache_policy` can swap
them in.

* :class:`NoCachePolicy` — never stores anything beyond its seeds: the
  lower bound, a pure "origin servers only" deployment;
* :class:`LruCachePolicy` — store on every request, evict least-recently-
  used titles until the newcomer fits (classic proxy-cache behaviour the
  paper explicitly contrasts with: "not ... any video title downloaded by
  any user ..., as is the concept of a proxy server");
* :class:`FullReplicationPolicy` — store everywhere while space lasts,
  never evict: the storage-unconstrained upper bound.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.dma import DmaAction, DmaResult
from repro.storage.array import DiskArray
from repro.storage.cache import PopularityTracker
from repro.storage.video import VideoTitle

StoreHook = Optional[Callable[[str], None]]


class _BaseCachePolicy:
    """Common plumbing: array access, callbacks, request counting."""

    def __init__(self, array: DiskArray, on_store: StoreHook = None, on_evict: StoreHook = None):
        self.array = array
        self.tracker = PopularityTracker()  # kept for points introspection
        self._on_store = on_store
        self._on_evict = on_evict
        self.pass_count = 0
        #: Title ids exempt from eviction (seed-pinning extension; same
        #: contract as DiskManipulationAlgorithm.pinned).
        self.pinned = set()

    def seed(self, video: VideoTitle) -> None:
        """Initialisation-phase load, identical across policies."""
        self.array.store(video)
        self.tracker.track(video.title_id)
        if self._on_store is not None:
            self._on_store(video.title_id)

    def cached_title_ids(self) -> List[str]:
        """Ids currently cached, sorted."""
        return self.array.stored_title_ids()

    def points_of(self, title_id: str) -> int:
        """Request count seen for a title."""
        return self.tracker.points_of(title_id)

    def _store(self, video: VideoTitle) -> None:
        self.array.store(video)
        self.tracker.track(video.title_id)
        if self._on_store is not None:
            self._on_store(video.title_id)

    def _evict(self, title_id: str) -> None:
        self.array.remove(title_id)
        if self._on_evict is not None:
            self._on_evict(title_id)


class NoCachePolicy(_BaseCachePolicy):
    """Never caches on demand; only seeded titles are ever resident."""

    def on_request(self, video: VideoTitle) -> DmaResult:
        """Count the request; store nothing."""
        self.pass_count += 1
        points = self.tracker.give_point(video.title_id)
        if self.array.has_video(video.title_id):
            return DmaResult(
                title_id=video.title_id, action=DmaAction.HIT, points=points, cached=True
            )
        return DmaResult(
            title_id=video.title_id, action=DmaAction.POINT_ONLY, points=points, cached=False
        )


class LruCachePolicy(_BaseCachePolicy):
    """Proxy-style cache: admit everything, evict least recently used."""

    def __init__(self, array: DiskArray, on_store: StoreHook = None, on_evict: StoreHook = None):
        super().__init__(array, on_store, on_evict)
        self._recency: List[str] = []  # least recent first

    def seed(self, video: VideoTitle) -> None:
        super().seed(video)
        self._touch(video.title_id)

    def on_request(self, video: VideoTitle) -> DmaResult:
        """Admit the title, evicting LRU victims until it fits."""
        self.pass_count += 1
        points = self.tracker.give_point(video.title_id)
        if self.array.has_video(video.title_id):
            self._touch(video.title_id)
            return DmaResult(
                title_id=video.title_id, action=DmaAction.HIT, points=points, cached=True
            )
        evicted: List[str] = []
        while not self.array.can_store(video):
            victim = self._least_recent()
            if victim is None:
                break
            self._evict(victim)
            self._recency.remove(victim)
            evicted.append(victim)
        if self.array.can_store(video):
            self._store(video)
            self._touch(video.title_id)
            action = DmaAction.REPLACED if evicted else DmaAction.STORED
            return DmaResult(
                title_id=video.title_id,
                action=action,
                points=points,
                evicted=tuple(evicted),
                cached=True,
            )
        # The title is larger than the whole array: nothing fits it.
        action = DmaAction.EVICTED_NOT_STORED if evicted else DmaAction.POINT_ONLY
        return DmaResult(
            title_id=video.title_id,
            action=action,
            points=points,
            evicted=tuple(evicted),
            cached=False,
        )

    def _touch(self, title_id: str) -> None:
        if title_id in self._recency:
            self._recency.remove(title_id)
        self._recency.append(title_id)

    def _least_recent(self) -> Optional[str]:
        for title_id in self._recency:
            if self.array.has_video(title_id) and title_id not in self.pinned:
                return title_id
        return None


class FullReplicationPolicy(_BaseCachePolicy):
    """Store every requested title while space lasts; never evict."""

    def on_request(self, video: VideoTitle) -> DmaResult:
        """Admit if it fits; otherwise just count the request."""
        self.pass_count += 1
        points = self.tracker.give_point(video.title_id)
        if self.array.has_video(video.title_id):
            return DmaResult(
                title_id=video.title_id, action=DmaAction.HIT, points=points, cached=True
            )
        if self.array.can_store(video):
            self._store(video)
            return DmaResult(
                title_id=video.title_id, action=DmaAction.STORED, points=points, cached=True
            )
        return DmaResult(
            title_id=video.title_id, action=DmaAction.POINT_ONLY, points=points, cached=False
        )
