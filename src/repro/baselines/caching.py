"""Cache-policy baselines for the DMA comparison (DESIGN.md X2).

Each policy is a :class:`~repro.placement.base.PlacementPolicy` over the
same :class:`~repro.storage.array.DiskArray`, so
:meth:`repro.server.video_server.VideoServer.set_cache_policy` can swap
them in.

* :class:`NoCachePolicy` — never stores anything beyond its seeds: the
  lower bound, a pure "origin servers only" deployment;
* :class:`LruCachePolicy` — store on every request, evict least-recently-
  used titles until the newcomer fits (classic proxy-cache behaviour the
  paper explicitly contrasts with: "not ... any video title downloaded by
  any user ..., as is the concept of a proxy server");
* :class:`FullReplicationPolicy` — store everywhere while space lasts,
  never evict: the storage-unconstrained upper bound.
"""

from __future__ import annotations

from typing import List, Optional

from repro.placement.base import (
    PlacementAction,
    PlacementPolicy,
    PlacementResult,
    StoreHook,
)
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle


class _BaseCachePolicy(PlacementPolicy):
    """Common plumbing: the policy interface with the baseline-friendly
    ``(array, on_store, on_evict)`` constructor the harness factories use."""

    def __init__(
        self, array: DiskArray, on_store: StoreHook = None, on_evict: StoreHook = None
    ):
        super().__init__(array, on_store=on_store, on_evict=on_evict)


class NoCachePolicy(_BaseCachePolicy):
    """Never caches on demand; only seeded titles are ever resident."""

    def _pass(self, video: VideoTitle) -> PlacementResult:
        """Count the request; store nothing."""
        points = self.tracker.give_point(video.title_id)
        if self.array.has_video(video.title_id):
            return PlacementResult(
                title_id=video.title_id,
                action=PlacementAction.HIT,
                points=points,
                cached=True,
                resident_fraction=1.0,
            )
        return PlacementResult(
            title_id=video.title_id,
            action=PlacementAction.POINT_ONLY,
            points=points,
            cached=False,
        )


class LruCachePolicy(_BaseCachePolicy):
    """Proxy-style cache: admit everything, evict least recently used."""

    def __init__(
        self, array: DiskArray, on_store: StoreHook = None, on_evict: StoreHook = None
    ):
        super().__init__(array, on_store, on_evict)
        self._recency: List[str] = []  # least recent first

    def seed(self, video: VideoTitle) -> None:
        super().seed(video)
        self._touch(video.title_id)

    def _pass(self, video: VideoTitle) -> PlacementResult:
        """Admit the title, evicting LRU victims until it fits."""
        points = self.tracker.give_point(video.title_id)
        if self.array.has_video(video.title_id):
            self._touch(video.title_id)
            return PlacementResult(
                title_id=video.title_id,
                action=PlacementAction.HIT,
                points=points,
                cached=True,
                resident_fraction=1.0,
            )
        evicted: List[str] = []
        while not self.array.can_store(video):
            victim = self._least_recent()
            if victim is None:
                break
            self._evict(victim)
            self._recency.remove(victim)
            evicted.append(victim)
        if self.array.can_store(video):
            self._store(video)
            self._touch(video.title_id)
            action = PlacementAction.REPLACED if evicted else PlacementAction.STORED
            return PlacementResult(
                title_id=video.title_id,
                action=action,
                points=points,
                evicted=tuple(evicted),
                cached=True,
                resident_fraction=1.0,
            )
        # The title is larger than the whole array: nothing fits it.
        if evicted:
            action = PlacementAction.EVICTED_NOT_STORED
            self.lost_victims += 1
            self.lost_victim_counter.inc()
        else:
            action = PlacementAction.POINT_ONLY
        return PlacementResult(
            title_id=video.title_id,
            action=action,
            points=points,
            evicted=tuple(evicted),
            cached=False,
        )

    def _touch(self, title_id: str) -> None:
        if title_id in self._recency:
            self._recency.remove(title_id)
        self._recency.append(title_id)

    def _least_recent(self) -> Optional[str]:
        for title_id in self._recency:
            if self.array.has_video(title_id) and title_id not in self.pinned:
                return title_id
        return None


class FullReplicationPolicy(_BaseCachePolicy):
    """Store every requested title while space lasts; never evict."""

    def _pass(self, video: VideoTitle) -> PlacementResult:
        """Admit if it fits; otherwise just count the request."""
        points = self.tracker.give_point(video.title_id)
        if self.array.has_video(video.title_id):
            return PlacementResult(
                title_id=video.title_id,
                action=PlacementAction.HIT,
                points=points,
                cached=True,
                resident_fraction=1.0,
            )
        if self.array.can_store(video):
            self._store(video)
            return PlacementResult(
                title_id=video.title_id,
                action=PlacementAction.STORED,
                points=points,
                cached=True,
                resident_fraction=1.0,
            )
        return PlacementResult(
            title_id=video.title_id,
            action=PlacementAction.POINT_ONLY,
            points=points,
            cached=False,
        )
