"""Server-selection baselines.

Each class exposes the same ``decide(home_uid, title_id, holders, poll)``
surface as :class:`repro.core.vra.VirtualRoutingAlgorithm` and returns a
:class:`~repro.core.vra.VraDecision`, so a
:class:`~repro.core.service.VoDService` can be switched to a baseline by
assigning ``service.vra = MinHopSelection(service.topology)``.

All baselines keep the paper's home-server shortcut (serving locally when
possible is uncontroversial); what they change is how a *remote* source is
picked:

* :class:`RandomSelection` — uniform choice among available holders;
* :class:`MinHopSelection` — fewest hops, utilisation-blind;
* :class:`StaticNearestSelection` — min-hop on a table computed once at
  construction (never adapts, even to topology-state changes);
* :class:`HomeOnlySelection` — a centralised service: everything missing
  locally comes from one origin server.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from repro.core.vra import PollFn, VraDecision
from repro.errors import RoutingError, TitleUnavailableError
from repro.network.routing.dijkstra import dijkstra
from repro.network.routing.paths import Path
from repro.network.topology import Topology


class _BaselineSelection:
    """Shared candidate filtering + local-shortcut behaviour."""

    def __init__(self, topology: Topology):
        self._topology = topology
        self.decision_count = 0

    def decide(
        self,
        home_uid: str,
        title_id: str,
        holders: Sequence[str],
        poll: Optional[PollFn] = None,
    ) -> VraDecision:
        """Pick a source server; same contract as the VRA's ``decide``."""
        self.decision_count += 1
        if not holders:
            raise TitleUnavailableError(f"no server has title {title_id!r}")
        poll_fn = poll if poll is not None else (lambda _uid: True)
        if home_uid in holders and poll_fn(home_uid):
            return VraDecision(
                title_id=title_id,
                home_uid=home_uid,
                chosen_uid=home_uid,
                served_locally=True,
                path=Path(nodes=(home_uid,), cost=0.0),
            )
        available = [uid for uid in holders if uid != home_uid and poll_fn(uid)]
        if not available:
            raise RoutingError(
                f"title {title_id!r}: no available holder among {list(holders)}"
            )
        return self._pick(home_uid, title_id, available)

    # subclasses implement
    def _pick(
        self, home_uid: str, title_id: str, available: Sequence[str]
    ) -> VraDecision:
        raise NotImplementedError

    def _hop_paths(self, home_uid: str) -> Dict[str, Path]:
        """Min-hop path to every reachable node (unit link weights)."""
        result = dijkstra(self._topology, home_uid, weight=lambda _link: 1.0)
        return {
            uid: result.path(uid)
            for uid in result.distances
            if uid != home_uid
        }

    def _decision(
        self, home_uid: str, title_id: str, chosen: str, paths: Dict[str, Path]
    ) -> VraDecision:
        if chosen not in paths:
            raise RoutingError(
                f"server {chosen!r} unreachable from {home_uid!r}"
            )
        return VraDecision(
            title_id=title_id,
            home_uid=home_uid,
            chosen_uid=chosen,
            served_locally=False,
            path=paths[chosen],
            candidate_paths={uid: paths[uid] for uid in paths},
        )


class RandomSelection(_BaselineSelection):
    """Uniform-random choice among available holders; min-hop transfer path."""

    def __init__(self, topology: Topology, rng: Optional[random.Random] = None):
        super().__init__(topology)
        self._rng = rng if rng is not None else random.Random(0)

    def _pick(self, home_uid: str, title_id: str, available: Sequence[str]) -> VraDecision:
        paths = self._hop_paths(home_uid)
        reachable = [uid for uid in available if uid in paths]
        if not reachable:
            raise RoutingError(
                f"title {title_id!r}: no reachable holder among {list(available)}"
            )
        chosen = self._rng.choice(sorted(reachable))
        return self._decision(home_uid, title_id, chosen, paths)


class MinHopSelection(_BaselineSelection):
    """Fewest-hops holder, recomputed per decision, utilisation-blind."""

    def _pick(self, home_uid: str, title_id: str, available: Sequence[str]) -> VraDecision:
        paths = self._hop_paths(home_uid)
        reachable = [uid for uid in available if uid in paths]
        if not reachable:
            raise RoutingError(
                f"title {title_id!r}: no reachable holder among {list(available)}"
            )
        chosen = min(reachable, key=lambda uid: (paths[uid].cost, uid))
        return self._decision(home_uid, title_id, chosen, paths)


class StaticNearestSelection(_BaselineSelection):
    """Min-hop on tables frozen at construction time.

    Models a deployment where routing tables were computed once during
    installation and never refreshed — the "without the need for
    reprogramming" anti-pattern the paper's dynamic adjustment avoids.
    """

    def __init__(self, topology: Topology):
        super().__init__(topology)
        self._tables: Dict[str, Dict[str, Path]] = {
            node.uid: self._hop_paths(node.uid) for node in topology.nodes()
        }

    def _pick(self, home_uid: str, title_id: str, available: Sequence[str]) -> VraDecision:
        paths = self._tables[home_uid]
        reachable = [uid for uid in available if uid in paths]
        if not reachable:
            raise RoutingError(
                f"title {title_id!r}: no reachable holder among {list(available)}"
            )
        chosen = min(reachable, key=lambda uid: (paths[uid].cost, uid))
        return self._decision(home_uid, title_id, chosen, paths)


class HomeOnlySelection(_BaselineSelection):
    """Centralised service: every remote fetch comes from one origin.

    Args:
        topology: The network.
        origin_uid: The single server that sources all remote titles.
    """

    def __init__(self, topology: Topology, origin_uid: str):
        super().__init__(topology)
        topology.node(origin_uid)  # validate
        self.origin_uid = origin_uid

    def _pick(self, home_uid: str, title_id: str, available: Sequence[str]) -> VraDecision:
        if self.origin_uid not in available:
            raise RoutingError(
                f"origin {self.origin_uid!r} cannot provide title {title_id!r}"
            )
        paths = self._hop_paths(home_uid)
        return self._decision(home_uid, title_id, self.origin_uid, paths)
