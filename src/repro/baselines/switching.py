"""Mid-stream switching baselines (DESIGN.md X1 ablation).

The paper's sessions re-run the VRA before *every* cluster.  These wrappers
change that cadence while keeping the underlying decision function intact,
so the switching ablation isolates exactly one variable:

* :class:`NeverSwitch` — decide once at session start, stick with it (the
  effect the paper warns about: "if we continue to download the video from
  the same server, we compromise the system's attempts to impose some kind
  of QoS");
* :class:`PeriodicRecompute` — re-decide every N clusters (N=1 equals the
  paper's always-recompute behaviour).

Both are callables compatible with the ``decide`` argument of
:class:`repro.core.session.StreamingSession`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.vra import VraDecision
from repro.errors import ReproError

DecideFn = Callable[[], VraDecision]


class NeverSwitch:
    """Freeze the first decision for the whole session."""

    def __init__(self, decide: DecideFn):
        self._decide = decide
        self._frozen: Optional[VraDecision] = None
        self.underlying_calls = 0

    def __call__(self) -> VraDecision:
        if self._frozen is None:
            self._frozen = self._decide()
            self.underlying_calls += 1
        return self._frozen


class PeriodicRecompute:
    """Re-run the underlying decision every ``period`` clusters.

    Args:
        decide: The wrapped decision function (usually the service VRA).
        period: Clusters between re-decisions; 1 = recompute always.
    """

    def __init__(self, decide: DecideFn, period: int):
        if period < 1:
            raise ReproError(f"recompute period must be >= 1, got {period}")
        self._decide = decide
        self.period = period
        self._calls = 0
        self._current: Optional[VraDecision] = None
        self.underlying_calls = 0

    def __call__(self) -> VraDecision:
        if self._current is None or self._calls % self.period == 0:
            self._current = self._decide()
            self.underlying_calls += 1
        self._calls += 1
        return self._current
