"""Baseline policies the paper's algorithms are benchmarked against.

* :mod:`repro.baselines.selection` — server-selection alternatives to the
  VRA (random, min-hop, static nearest, origin-only);
* :mod:`repro.baselines.caching` — cache-policy alternatives to the DMA
  (no cache, LRU, pure LFU, full replication);
* :mod:`repro.baselines.switching` — mid-stream switching alternatives
  (never switch, periodic recompute) wrapped around any decide function.
"""

from repro.baselines.caching import (
    FullReplicationPolicy,
    LruCachePolicy,
    NoCachePolicy,
)
from repro.baselines.selection import (
    HomeOnlySelection,
    MinHopSelection,
    RandomSelection,
    StaticNearestSelection,
)
from repro.baselines.switching import NeverSwitch, PeriodicRecompute

__all__ = [
    "FullReplicationPolicy",
    "HomeOnlySelection",
    "LruCachePolicy",
    "MinHopSelection",
    "NeverSwitch",
    "NoCachePolicy",
    "PeriodicRecompute",
    "RandomSelection",
    "StaticNearestSelection",
]
