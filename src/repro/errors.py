"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one type to handle anything the VoD service raises while letting
programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation engine."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or after shutdown."""


class TopologyError(ReproError):
    """Raised for malformed network topologies (unknown nodes, dup links...)."""


class LinkCapacityError(ReproError):
    """Raised when a bandwidth reservation exceeds a link's capacity."""


class FlowError(ReproError):
    """Raised for invalid flow operations (double release, unknown flow)."""


class DatabaseError(ReproError):
    """Raised for invalid service-database operations."""


class AccessDeniedError(DatabaseError):
    """Raised when a full-access handle touches limited-access attributes."""


class DuplicateEntryError(DatabaseError):
    """Raised when registering a server/link/title that already exists."""

class MissingEntryError(DatabaseError):
    """Raised when looking up a server/link/title that was never registered."""


class StorageError(ReproError):
    """Raised for disk/array misuse (overflow, unknown video...)."""


class StripingError(StorageError):
    """Raised for invalid striping layouts (zero disks, zero cluster size)."""


class CacheError(StorageError):
    """Raised for invalid cache operations."""


class AdmissionError(ReproError):
    """Raised when a video server cannot admit another stream."""


class RoutingError(ReproError):
    """Raised when no route / no candidate server can satisfy a request."""


class TitleUnavailableError(RoutingError):
    """Raised when no server in the network holds the requested title."""


class NoReachableHolderError(RoutingError):
    """Raised when holders exist but none is reachable from the home server.

    The partition case of the VRA: servers answered the availability poll,
    yet every least-cost path from the home server is severed (link
    failures).  Distinguished from the generic :class:`RoutingError` so
    resilience-aware callers (session retry/backoff,
    ``VoDService.try_decide``) can treat it as a transient condition.
    """


class FaultInjectionError(ReproError):
    """Raised for invalid fault schedules or injector misuse."""


class ServiceError(ReproError):
    """Raised for VoD-service level failures (bad initialisation etc.)."""


class WorkloadError(ReproError):
    """Raised for invalid workload-generator parameters."""


class SnmpError(ReproError):
    """Raised for invalid SNMP agent/collector operations."""
