"""Video server layer: one :class:`~repro.server.video_server.VideoServer`
per network node, combining the striped disk array, the DMA cache and
stream admission control."""

from repro.server.admission import AdmissionController
from repro.server.video_server import VideoServer

__all__ = ["AdmissionController", "VideoServer"]
