"""A video server at one network node.

Combines the striped :class:`~repro.storage.array.DiskArray`, a
:class:`~repro.placement.base.PlacementPolicy` (whole-title DMA by
default) and an :class:`~repro.server.admission.AdmissionController`.
The database is kept in sync through the policy's store/evict/partial
callbacks, so the VRA's "servers that have the video stored" list always
reflects cache contents — fraction aware, full holders first.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.database.records import TitleInfo
from repro.database.store import ServiceDatabase
from repro.errors import StorageError
from repro.obs.registry import NULL_COUNTER, MetricsRegistry
from repro.placement.base import PlacementConfig, PlacementPolicy, PlacementResult
from repro.server.admission import AdmissionController
from repro.storage.array import DiskArray
from repro.storage.video import VideoTitle


class _FanoutCounter:
    """Mirror every increment onto several counters (the legacy ``dma.*``
    telemetry alias when the deprecated shim is the active policy)."""

    def __init__(self, *counters):
        self._counters = counters

    def inc(self, amount: float = 1.0) -> None:
        for counter in self._counters:
            counter.inc(amount)


class VideoServer:
    """One node's video server.

    Args:
        node_uid: The network node this server runs on.
        database: The shared service database (advertisements flow here).
        disk_count: Number of disks in the array ("we propose the use of as
            many disks as possible").
        disk_capacity_mb: Capacity of each disk.
        cluster_mb: Common striping cluster size ``c``.
        max_streams: Concurrent streams the server will source.
        evict_until_fits: Forwarded to the default DMA placement policy
            (extension; ignored when ``placement`` is given).
        placement: Declarative placement-policy choice; None builds the
            paper-faithful whole-title DMA honouring ``evict_until_fits``.
    """

    def __init__(
        self,
        node_uid: str,
        database: ServiceDatabase,
        disk_count: int,
        disk_capacity_mb: float,
        cluster_mb: float,
        max_streams: int = 32,
        evict_until_fits: bool = False,
        defer_dma_advertisements: bool = True,
        pin_seeded: bool = False,
        placement: Optional[PlacementConfig] = None,
    ):
        self.node_uid = node_uid
        self._database = database
        self.array = DiskArray(disk_count, disk_capacity_mb, cluster_mb)
        self.admission = AdmissionController(max_streams)
        if placement is None:
            placement = PlacementConfig(kind="dma", evict_until_fits=evict_until_fits)
        self.placement_config = placement
        self.policy: PlacementPolicy = placement.build(
            self.array,
            on_store=self._advertise,
            on_evict=self._withdraw,
            on_partial=self._advertise_partial,
        )
        self._online = True
        #: Monotonic counter of online/offline transitions.  Value-aware:
        #: re-assigning the current value bumps nothing (mirrors the
        #: link/SNMP value-aware write contracts), so crash-recovery
        #: storms that re-kill a dead server are free.
        self._state_version = 0
        #: Optional ``listener(server)`` invoked on each actual
        #: online/offline transition (the fault injector's crash hook).
        self.on_state_change: Optional[Callable[["VideoServer"], None]] = None
        #: Optional listener fired whenever anything feeding this server's
        #: VRA poll answer (:meth:`can_provide`) can move: online state,
        #: title residency/pending downloads, disk health, stream slots.
        #: The service wires it to invalidate its decision-key cache.
        self.on_availability_change: Optional[Callable[[], None]] = None
        self.admission.on_change = self._touch_availability
        self.array.on_change = self._touch_availability
        self.serve_count = 0
        # A title the DMA stores during a request is only *bytes in flight*
        # until that request's own download completes; deferral keeps it out
        # of the catalog (and out of the VRA's holder list) until then.
        self._defer_dma_advertisements = defer_dma_advertisements
        self._seeding = False
        self._pending_advertisements: Set[str] = set()
        #: Seed-pinning extension: when True, titles loaded at
        #: initialisation are exempt from cache eviction, so the network
        #: never loses a title's last copy (Figure 2 alone offers no such
        #: protection — see the failure-injection tests).
        self.pin_seeded = pin_seeded
        # Telemetry instruments; no-ops until attach_metrics() swaps in
        # real counters, so the serving/eviction paths need no guards.
        self._m_serves = NULL_COUNTER
        self._m_dma_stores = NULL_COUNTER
        self._m_dma_evictions = NULL_COUNTER
        self._m_prefix_stores = NULL_COUNTER
        self._registry: Optional[MetricsRegistry] = None

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Resolve this server's telemetry counters from a registry.

        Creates per-server ``server.serves`` / ``server.dma_stores`` /
        ``server.dma_evictions`` / ``placement.prefix_stores`` counters
        and wires the placement policy's instruments (point counter,
        lost-victim counter).  Safe to call on a disabled registry
        (everything stays a no-op).
        """
        self._registry = registry
        labels = {"server": self.node_uid}
        self._m_serves = registry.counter(
            "server.serves", subsystem="server", labels=labels,
            description="streams this server began sourcing",
        )
        self._m_dma_stores = registry.counter(
            "server.dma_stores", subsystem="server", labels=labels,
            description="titles the placement policy stored locally",
        )
        self._m_dma_evictions = registry.counter(
            "server.dma_evictions", subsystem="server", labels=labels,
            description="titles the placement policy evicted",
        )
        self._m_prefix_stores = registry.counter(
            "placement.prefix_stores", subsystem="server", labels=labels,
            description="prefix/partial segments the placement policy stored",
        )
        self._wire_policy_metrics()

    def _wire_policy_metrics(self) -> None:
        """Point the active policy's instruments at the attached registry
        (re-run whenever the policy is swapped)."""
        registry = self._registry
        if registry is None:
            return
        labels = {"server": self.node_uid}
        tracker = getattr(self.policy, "tracker", None)
        if tracker is not None:
            points = registry.counter(
                "placement.points_awarded", subsystem="server", labels=labels,
                description="popularity points awarded by the placement policy",
            )
            if self.legacy_policy:
                # Deprecated-shim deployments keep seeing the historical
                # dma.* family alongside the new one.
                points = _FanoutCounter(
                    points,
                    registry.counter(
                        "dma.points_awarded", subsystem="server", labels=labels,
                        description="popularity points awarded by the DMA "
                        "(legacy alias of placement.points_awarded)",
                    ),
                )
            tracker.points_counter = points
        if hasattr(self.policy, "lost_victim_counter"):
            self.policy.lost_victim_counter = registry.counter(
                "placement.lost_victims", subsystem="server", labels=labels,
                description="eviction passes that deleted victim(s) without "
                "storing the newcomer",
            )

    # ------------------------------------------------------------------ #
    # operational state
    # ------------------------------------------------------------------ #
    @property
    def online(self) -> bool:
        """Administrative/operational state; False while crashed."""
        return self._online

    @online.setter
    def online(self, value: bool) -> None:
        value = bool(value)
        if value == self._online:
            return
        self._online = value
        self._state_version += 1
        self._touch_availability()
        if self.on_state_change is not None:
            self.on_state_change(self)

    def _touch_availability(self) -> None:
        if self.on_availability_change is not None:
            self.on_availability_change()

    @property
    def state_version(self) -> int:
        """Counter of online/offline transitions on this server."""
        return self._state_version

    # ------------------------------------------------------------------ #
    # cache-policy plumbing
    # ------------------------------------------------------------------ #
    @property
    def dma(self) -> PlacementPolicy:
        """Historical name for the active placement policy (the default
        policy *is* the paper's DMA, so existing call sites read on)."""
        return self.policy

    @dma.setter
    def dma(self, policy: PlacementPolicy) -> None:
        self.policy = policy
        self._wire_policy_metrics()

    @property
    def legacy_policy(self) -> bool:
        """True when the active policy came in through the deprecated
        ``DiskManipulationAlgorithm`` shim (drives dma.* telemetry and
        trace aliases)."""
        from repro.core.dma import DiskManipulationAlgorithm

        return isinstance(self.policy, DiskManipulationAlgorithm)

    def set_cache_policy(self, factory) -> None:
        """Swap the placement policy for a baseline cache policy.

        Args:
            factory: Callable ``factory(array, on_store, on_evict)``
                returning an object with the policy surface
                (``on_request``, ``seed``) — e.g. the classes in
                :mod:`repro.baselines.caching`.  Must be called before any
                titles are seeded or requested, so the old policy holds no
                state worth migrating.
        """
        self.dma = factory(self.array, self._advertise, self._withdraw)

    # ------------------------------------------------------------------ #
    # catalog
    # ------------------------------------------------------------------ #
    def seed_title(self, video: VideoTitle) -> None:
        """Initialisation-phase load of a title declared by the admins.

        Registers the title in the global catalog if needed, stores it on
        the array and advertises it.

        Raises:
            StorageError: If the video does not fit on the array.
        """
        self._register_catalog_info(video)
        self._seeding = True
        try:
            self.dma.seed(video)
        finally:
            self._seeding = False
        if self.pin_seeded:
            self.dma.pinned.add(video.title_id)

    def has_title(self, title_id: str) -> bool:
        """True if the full title is resident and servable (a DMA store
        whose download is still in flight, or a title with clusters on a
        failed disk, does not count)."""
        return (
            self.array.is_servable(title_id)
            and title_id not in self._pending_advertisements
        )

    def stored_title_ids(self) -> List[str]:
        """Locally resident title ids, sorted."""
        return self.array.stored_title_ids()

    def serves_segment(self, title_id: str) -> bool:
        """True when this server can source at least the leading clusters
        of the title — a full servable copy or a healthy prefix segment."""
        return self.has_title(title_id) or self.array.segment_servable(title_id)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def can_provide(self, title_id: str) -> bool:
        """The VRA poll answer: online, title resident, slot available."""
        return self.online and self.has_title(title_id) and self.admission.has_capacity

    def begin_serving(self, title_id: str) -> int:
        """Admit one outgoing stream of a resident title.

        Returns:
            The admission lease to release when the stream ends.

        Raises:
            StorageError: If the title is not resident (neither a full
                servable copy nor a prefix segment).
            AdmissionError: If the server is at stream capacity.
        """
        if not self.serves_segment(title_id):
            raise StorageError(
                f"server {self.node_uid!r} asked to serve non-resident "
                f"title {title_id!r}"
            )
        lease = self.admission.admit()
        self.serve_count += 1
        self._m_serves.inc()
        return lease

    def end_serving(self, lease: int) -> None:
        """Release a stream slot taken by :meth:`begin_serving`."""
        self.admission.release(lease)

    # ------------------------------------------------------------------ #
    # placement entry point
    # ------------------------------------------------------------------ #
    def on_download_begins(self, video: VideoTitle) -> PlacementResult:
        """Figure 2 trigger: "Server has begun downloading a video".

        Called by the service whenever a client attached to this server
        requests ``video`` (whether it is then served locally or fetched
        from a remote server, the local server sees the download).  Runs
        one pass of the active placement policy.
        """
        self._register_catalog_info(video)
        return self.policy.on_request(video)

    def commit_download(self, title_id: str) -> None:
        """The deferred download of ``title_id`` completed: advertise it."""
        if title_id in self._pending_advertisements:
            self._pending_advertisements.discard(title_id)
            self._touch_availability()
            self._database.add_title_to_server(self.node_uid, title_id)

    def abort_download(self, title_id: str) -> None:
        """The deferred download failed: drop the partial bytes silently."""
        if title_id in self._pending_advertisements:
            self._pending_advertisements.discard(title_id)
            self._touch_availability()
            if self.array.has_video(title_id):
                self.array.remove(title_id)
            if self._database.holds_title(self.node_uid, title_id):
                # A fractional policy promoted a previously-advertised
                # prefix to a full store; the full bytes are gone, so the
                # stale prefix advertisement goes with them.
                self._database.remove_title_from_server(self.node_uid, title_id)

    def pending_title_ids(self) -> List[str]:
        """Titles stored by the DMA whose downloads are still in flight."""
        return sorted(self._pending_advertisements)

    # ------------------------------------------------------------------ #
    def _register_catalog_info(self, video: VideoTitle) -> None:
        self._database.register_title(
            TitleInfo(
                title_id=video.title_id,
                name=video.name,
                size_mb=video.size_mb,
                duration_s=video.duration_s,
                bitrate_mbps=video.bitrate_mbps,
            )
        )

    def _advertise(self, title_id: str) -> None:
        self._m_dma_stores.inc()
        self._touch_availability()
        if self._defer_dma_advertisements and not self._seeding:
            self._pending_advertisements.add(title_id)
        else:
            self._database.add_title_to_server(self.node_uid, title_id)

    def _advertise_partial(self, title_id: str, fraction: float) -> None:
        """Advertise a prefix/partial segment, fraction aware and
        immediately — segment fills are modelled as instantaneous
        background transfers, and the VRA's full-holder filter keeps
        remote requests away regardless."""
        self._m_prefix_stores.inc()
        self._touch_availability()
        self._database.add_title_to_server(self.node_uid, title_id, fraction=fraction)

    def _withdraw(self, title_id: str) -> None:
        self._m_dma_evictions.inc()
        self._touch_availability()
        if title_id in self._pending_advertisements:
            # Evicted before its download finished: it was never advertised
            # as a full copy — but a fractional policy may have advertised
            # the prefix it grew from.
            self._pending_advertisements.discard(title_id)
            if self._database.holds_title(self.node_uid, title_id):
                self._database.remove_title_from_server(self.node_uid, title_id)
        else:
            self._database.remove_title_from_server(self.node_uid, title_id)

    def __repr__(self) -> str:
        return (
            f"VideoServer({self.node_uid!r}, titles={len(self.stored_title_ids())}, "
            f"streams={self.admission.active_count}/{self.admission.max_streams})"
        )
