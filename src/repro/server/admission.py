"""Concurrent-stream admission control.

The paper's servers "can also run other services (as all Internet servers)",
so each video server bounds how many simultaneous streams it will source.
The VRA's polling step ("Poll all of those servers to find out which ones
can provide the video") is answered from this controller.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.errors import AdmissionError


class AdmissionController:
    """Counting semaphore over stream slots with named leases."""

    def __init__(self, max_streams: int):
        if max_streams < 1:
            raise AdmissionError(f"max_streams must be >= 1, got {max_streams}")
        self.max_streams = max_streams
        self._active: Set[int] = set()
        self._next_lease = 1
        self.rejected_count = 0
        self.admitted_count = 0
        self._peak_active = 0
        #: Optional listener fired whenever the occupied-slot count moves
        #: (an input of the VRA poll answer; the service's decision-key
        #: cache invalidates on it).
        self.on_change: Optional[Callable[[], None]] = None

    @property
    def active_count(self) -> int:
        """Streams currently admitted."""
        return len(self._active)

    @property
    def peak_active(self) -> int:
        """High-water mark of concurrently admitted streams (telemetry)."""
        return self._peak_active

    @property
    def load(self) -> float:
        """Stream-slot occupancy in [0, 1] (telemetry gauge)."""
        return len(self._active) / self.max_streams

    @property
    def has_capacity(self) -> bool:
        """True if another stream can be admitted right now."""
        return len(self._active) < self.max_streams

    def admit(self) -> int:
        """Take a stream slot.

        Returns:
            An opaque lease id to pass back to :meth:`release`.

        Raises:
            AdmissionError: If the server is at capacity.
        """
        if not self.has_capacity:
            self.rejected_count += 1
            raise AdmissionError(
                f"server at capacity ({self.max_streams} concurrent streams)"
            )
        lease = self._next_lease
        self._next_lease += 1
        self._active.add(lease)
        self.admitted_count += 1
        if len(self._active) > self._peak_active:
            self._peak_active = len(self._active)
        if self.on_change is not None:
            self.on_change()
        return lease

    def release(self, lease: int) -> None:
        """Return a stream slot.

        Raises:
            AdmissionError: If the lease is unknown (double release).
        """
        if lease not in self._active:
            raise AdmissionError(f"lease {lease} is not active (double release?)")
        self._active.discard(lease)
        if self.on_change is not None:
            self.on_change()
