"""Background-traffic shaping.

:class:`Table2Replayer` drives a topology's background traffic through the
paper's Table 2 day (piecewise-linear between the 8am/10am/4pm/6pm samples),
which is what makes "the optimal server changes during downloading" actually
happen in the switching experiments.  :class:`DiurnalTrafficShaper` is the
generic synthetic equivalent for non-GRNET topologies.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.errors import WorkloadError
from repro.network import grnet
from repro.network.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTask


class Table2Replayer:
    """Applies the paper's Table 2 traffic to GRNET as simulated time passes.

    Args:
        sim: The simulation engine (its clock is read as seconds since
            midnight).
        topology: A topology containing the GRNET link names.
        update_period_s: How often background levels are refreshed.
    """

    def __init__(self, sim: Simulator, topology: Topology, update_period_s: float = 60.0):
        self._sim = sim
        self._topology = topology
        self._task = PeriodicTask(sim, update_period_s, self._apply, name="table2-replay")

    def start(self) -> None:
        """Apply the current instant's traffic and begin periodic updates."""
        self._apply()
        self._task.start()

    def stop(self) -> None:
        """Stop refreshing background traffic."""
        self._task.stop()

    def _apply(self) -> None:
        for name, mbps in grnet.interpolated_traffic(self._sim.now).items():
            self._topology.link_named(name).set_background_mbps(mbps)


class DiurnalTrafficShaper:
    """Synthetic day/night background traffic for arbitrary topologies.

    Each link's background level follows

        base + amplitude * (1 + sin(2*pi*(t - phase)/day)) / 2

    scaled by the link's capacity, so big links carry proportionally more
    background, like the 18 Mb GRNET trunks do in Table 2.

    Args:
        sim: Simulation engine.
        topology: The network to shape.
        base_fraction: Off-peak utilisation fraction of capacity.
        peak_fraction: On-peak utilisation fraction of capacity.
        day_s: Period of the cycle (86400 = one day).
        phase_s: Time of the minimum (4am default).
        update_period_s: Refresh cadence.
        jitter: Optional per-update multiplicative jitter function
            (e.g. ``rng.uniform(0.9, 1.1)``) for irregular traffic.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        base_fraction: float = 0.05,
        peak_fraction: float = 0.7,
        day_s: float = 86_400.0,
        phase_s: float = 4 * 3600.0,
        update_period_s: float = 60.0,
        jitter: Optional[Callable[[], float]] = None,
    ):
        if not (0.0 <= base_fraction <= peak_fraction <= 1.0):
            raise WorkloadError(
                f"need 0 <= base ({base_fraction}) <= peak ({peak_fraction}) <= 1"
            )
        if not (day_s > 0.0):
            raise WorkloadError(f"day length must be positive, got {day_s!r}")
        self._sim = sim
        self._topology = topology
        self._base = base_fraction
        self._amplitude = peak_fraction - base_fraction
        self._day = day_s
        self._phase = phase_s
        self._jitter = jitter
        self._task = PeriodicTask(sim, update_period_s, self._apply, name="diurnal")

    def utilization_at(self, t: float) -> float:
        """The deterministic utilisation fraction at time ``t``."""
        wave = (1.0 - math.cos(2.0 * math.pi * (t - self._phase) / self._day)) / 2.0
        return self._base + self._amplitude * wave

    def start(self) -> None:
        """Apply current levels and begin periodic updates."""
        self._apply()
        self._task.start()

    def stop(self) -> None:
        """Stop refreshing background traffic."""
        self._task.stop()

    def _apply(self) -> None:
        fraction = self.utilization_at(self._sim.now)
        for link in self._topology.links():
            level = fraction
            if self._jitter is not None:
                level = min(max(fraction * self._jitter(), 0.0), 1.0)
            link.set_background_mbps(level * link.capacity_mbps)
