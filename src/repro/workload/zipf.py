"""Zipf popularity distribution over a title catalog.

VoD request popularity is classically modelled as Zipf with exponent
``s`` around 0.7-1.1 (video rental and early VoD trace studies): the
k-th most popular of N titles is requested with probability proportional
to ``1 / k**s``.  The DMA's "most popular" concept is exactly a bet that
this skew exists, so the comparison benches sweep ``s``.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import List, Optional, Sequence

from repro.errors import WorkloadError


def zipf_weights(n: int, exponent: float = 1.0) -> List[float]:
    """Normalised Zipf probabilities for ranks 1..n.

    Args:
        n: Number of ranks (catalog size).
        exponent: The Zipf skew ``s``; 0 gives a uniform distribution.

    Raises:
        WorkloadError: If ``n`` is not positive or ``exponent`` is negative.
    """
    if n < 1:
        raise WorkloadError(f"catalog size must be >= 1, got {n}")
    if exponent < 0.0:
        raise WorkloadError(f"Zipf exponent must be >= 0, got {exponent!r}")
    raw = [1.0 / (rank**exponent) for rank in range(1, n + 1)]
    total = sum(raw)
    return [w / total for w in raw]


class ZipfSampler:
    """Samples items by Zipf rank, deterministically under a given RNG.

    Args:
        items: The catalog in rank order (index 0 = most popular).
        exponent: Zipf skew.
        rng: Random stream (use :class:`repro.sim.rng.RngRegistry` streams
            for reproducibility).
    """

    def __init__(
        self,
        items: Sequence[str],
        exponent: float = 1.0,
        rng: Optional[random.Random] = None,
    ):
        if not items:
            raise WorkloadError("ZipfSampler needs a non-empty item list")
        self._items = list(items)
        self._rng = rng if rng is not None else random.Random(0)
        weights = zipf_weights(len(self._items), exponent)
        self._cumulative = list(itertools.accumulate(weights))
        # Guard the final bucket against float dust.
        self._cumulative[-1] = 1.0

    @property
    def items(self) -> List[str]:
        """The catalog in rank order."""
        return list(self._items)

    def probability_of_rank(self, rank: int) -> float:
        """Request probability of the item at 1-based ``rank``."""
        if not (1 <= rank <= len(self._items)):
            raise WorkloadError(
                f"rank {rank} out of range 1..{len(self._items)}"
            )
        previous = self._cumulative[rank - 2] if rank >= 2 else 0.0
        return self._cumulative[rank - 1] - previous

    def sample(self) -> str:
        """Draw one item."""
        u = self._rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        index = min(index, len(self._items) - 1)
        return self._items[index]

    def sample_many(self, count: int) -> List[str]:
        """Draw ``count`` items."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        return [self.sample() for _ in range(count)]
