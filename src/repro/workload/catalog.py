"""Synthetic video-catalog generation.

The paper's servers hold "video titles" of feature-film scale.  The
generator produces titles with configurable size/duration ranges — defaults
are MPEG-1-era movies (~1-2 GB, 90-120 minutes), matching the 2000-vintage
deployment the paper targets.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.errors import WorkloadError
from repro.storage.video import VideoTitle


class CatalogGenerator:
    """Generates reproducible synthetic catalogs.

    Args:
        rng: Random stream.
        min_size_mb / max_size_mb: Title size range.
        min_duration_s / max_duration_s: Title duration range.
    """

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        min_size_mb: float = 800.0,
        max_size_mb: float = 2_000.0,
        min_duration_s: float = 80 * 60.0,
        max_duration_s: float = 130 * 60.0,
    ):
        if not (0.0 < min_size_mb <= max_size_mb):
            raise WorkloadError(
                f"invalid size range [{min_size_mb}, {max_size_mb}]"
            )
        if not (0.0 < min_duration_s <= max_duration_s):
            raise WorkloadError(
                f"invalid duration range [{min_duration_s}, {max_duration_s}]"
            )
        self._rng = rng if rng is not None else random.Random(0)
        self._min_size = min_size_mb
        self._max_size = max_size_mb
        self._min_duration = min_duration_s
        self._max_duration = max_duration_s

    def generate(self, count: int, prefix: str = "title") -> List[VideoTitle]:
        """Produce ``count`` titles named ``{prefix}-001`` onward, in
        popularity-rank order (rank 1 first, for direct use with
        :class:`~repro.workload.zipf.ZipfSampler`).

        Raises:
            WorkloadError: If ``count`` is not positive.
        """
        if count < 1:
            raise WorkloadError(f"catalog count must be >= 1, got {count}")
        width = max(3, len(str(count)))
        titles = []
        for rank in range(1, count + 1):
            size = self._rng.uniform(self._min_size, self._max_size)
            duration = self._rng.uniform(self._min_duration, self._max_duration)
            titles.append(
                VideoTitle(
                    title_id=f"{prefix}-{rank:0{width}d}",
                    name=f"{prefix.title()} #{rank}",
                    size_mb=round(size, 1),
                    duration_s=round(duration, 1),
                )
            )
        return titles

    def uniform_catalog(
        self, count: int, size_mb: float, duration_s: float, prefix: str = "title"
    ) -> List[VideoTitle]:
        """Catalog of identical-shape titles (isolates policy effects)."""
        if count < 1:
            raise WorkloadError(f"catalog count must be >= 1, got {count}")
        width = max(3, len(str(count)))
        return [
            VideoTitle(
                title_id=f"{prefix}-{rank:0{width}d}",
                name=f"{prefix.title()} #{rank}",
                size_mb=size_mb,
                duration_s=duration_s,
            )
            for rank in range(1, count + 1)
        ]
