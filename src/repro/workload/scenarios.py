"""Packaged workload scenarios.

A :class:`WorkloadScenario` is a reproducible list of timed requests
(client home server + title) plus the catalog behind them.  The paper's
motivation is regional demand skew — "we meet the requests of the users
that are utilizing a certain server and may have different orientations
than other users" — so :func:`regional_scenario` gives each node its own
rotated Zipf ranking over a shared catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import WorkloadError
from repro.sim.rng import RngRegistry
from repro.storage.video import VideoTitle
from repro.workload.arrivals import PoissonArrivals
from repro.workload.catalog import CatalogGenerator
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class RequestEvent:
    """One scheduled request.

    Attributes:
        time_s: Simulated submission instant.
        home_uid: The client's home server.
        title_id: The requested title.
        client_id: Synthetic client identity.
    """

    time_s: float
    home_uid: str
    title_id: str
    client_id: str


@dataclass
class WorkloadScenario:
    """A full, reproducible request schedule.

    Attributes:
        catalog: Every title referenced by the events.
        events: Requests sorted by time.
    """

    catalog: List[VideoTitle]
    events: List[RequestEvent]

    @property
    def duration_s(self) -> float:
        """Time of the last event (0 for an empty schedule)."""
        return self.events[-1].time_s if self.events else 0.0

    def events_by_home(self) -> Dict[str, List[RequestEvent]]:
        """Events grouped by home server."""
        grouped: Dict[str, List[RequestEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.home_uid, []).append(event)
        return grouped

    def title_by_id(self, title_id: str) -> VideoTitle:
        """Catalog lookup.

        Raises:
            WorkloadError: If the id is not in the catalog.
        """
        for title in self.catalog:
            if title.title_id == title_id:
                return title
        raise WorkloadError(f"title {title_id!r} is not in the scenario catalog")


def regional_scenario(
    home_uids: Sequence[str],
    catalog_size: int = 50,
    requests_per_node: int = 100,
    horizon_s: float = 8 * 3600.0,
    zipf_exponent: float = 0.9,
    regional_shift: int = 5,
    seed: int = 42,
    catalog: Optional[List[VideoTitle]] = None,
) -> WorkloadScenario:
    """Zipf+Poisson workload with per-region popularity rotation.

    Each node draws from the shared catalog, but node ``i``'s popularity
    ranking is the global one rotated by ``i * regional_shift`` positions —
    so every region has its own "most popular" titles, the situation the
    DMA's per-server caches are designed for.

    Args:
        home_uids: The nodes clients attach to.
        catalog_size: Number of titles (ignored when ``catalog`` given).
        requests_per_node: Mean request count per node over the horizon.
        horizon_s: Schedule length in simulated seconds.
        zipf_exponent: Popularity skew.
        regional_shift: Ranking rotation per node index (0 = identical
            tastes everywhere).
        seed: Master seed; every stream derives from it.
        catalog: Optional pre-built catalog to reuse.

    Raises:
        WorkloadError: For an empty node list or non-positive parameters.
    """
    if not home_uids:
        raise WorkloadError("regional_scenario needs at least one home node")
    if requests_per_node < 1:
        raise WorkloadError(
            f"requests_per_node must be >= 1, got {requests_per_node}"
        )
    if not (horizon_s > 0.0):
        raise WorkloadError(f"horizon must be positive, got {horizon_s!r}")

    rngs = RngRegistry(master_seed=seed)
    if catalog is None:
        catalog = CatalogGenerator(rng=rngs.stream("catalog")).generate(catalog_size)
    title_ids = [title.title_id for title in catalog]

    events: List[RequestEvent] = []
    for index, home_uid in enumerate(home_uids):
        rotation = (index * regional_shift) % len(title_ids)
        regional_ranking = title_ids[rotation:] + title_ids[:rotation]
        sampler = ZipfSampler(
            regional_ranking,
            exponent=zipf_exponent,
            rng=rngs.stream(f"titles.{home_uid}"),
        )
        arrivals = PoissonArrivals(
            rate_per_s=requests_per_node / horizon_s,
            rng=rngs.stream(f"arrivals.{home_uid}"),
        )
        for serial, time_s in enumerate(arrivals.times_until(horizon_s)):
            events.append(
                RequestEvent(
                    time_s=time_s,
                    home_uid=home_uid,
                    title_id=sampler.sample(),
                    client_id=f"client-{home_uid}-{serial:04d}",
                )
            )
    events.sort(key=lambda e: (e.time_s, e.client_id))
    return WorkloadScenario(catalog=catalog, events=events)


def flash_crowd_scenario(
    home_uid: str,
    title: VideoTitle,
    viewer_count: int = 40,
    start_s: float = 600.0,
    ramp_s: float = 1_800.0,
    seed: int = 7,
) -> WorkloadScenario:
    """A flash crowd: many viewers at one node want one title, fast.

    The stress case the DMA's "most popular" concept is built to absorb:
    the first fetch pays the network cost, everyone after it is served
    from the freshly cached local copy.

    Args:
        home_uid: The node the crowd is attached to.
        title: The title everyone wants.
        viewer_count: Crowd size.
        start_s: When the first request lands.
        ramp_s: The crowd arrives uniformly at random over this window.
        seed: RNG seed for the arrival jitter.

    Raises:
        WorkloadError: For non-positive crowd size or window.
    """
    if viewer_count < 1:
        raise WorkloadError(f"viewer_count must be >= 1, got {viewer_count}")
    if not (ramp_s > 0.0):
        raise WorkloadError(f"ramp window must be positive, got {ramp_s!r}")
    rng = RngRegistry(seed).stream("flashcrowd")
    times = sorted(start_s + rng.uniform(0.0, ramp_s) for _ in range(viewer_count))
    events = [
        RequestEvent(
            time_s=time_s,
            home_uid=home_uid,
            title_id=title.title_id,
            client_id=f"crowd-{serial:04d}",
        )
        for serial, time_s in enumerate(times)
    ]
    return WorkloadScenario(catalog=[title], events=events)
