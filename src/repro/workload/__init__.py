"""Workload generation for experiments and benchmarks.

Video-on-demand request populations are classically Zipf-distributed over
titles with Poisson arrivals; :mod:`repro.workload.zipf` and
:mod:`repro.workload.arrivals` provide those, :mod:`repro.workload.catalog`
generates synthetic title catalogs, :mod:`repro.workload.traces` shapes
diurnal background traffic (including replaying the paper's Table 2), and
:mod:`repro.workload.scenarios` packages ready-made workloads used by the
examples and benchmarks.
"""

from repro.workload.arrivals import PoissonArrivals, UniformArrivals
from repro.workload.catalog import CatalogGenerator
from repro.workload.traces import DiurnalTrafficShaper, Table2Replayer
from repro.workload.zipf import ZipfSampler, zipf_weights

from repro.workload.scenarios import (
    RequestEvent,
    WorkloadScenario,
    flash_crowd_scenario,
    regional_scenario,
)

__all__ = [
    "CatalogGenerator",
    "DiurnalTrafficShaper",
    "PoissonArrivals",
    "RequestEvent",
    "Table2Replayer",
    "UniformArrivals",
    "WorkloadScenario",
    "ZipfSampler",
    "flash_crowd_scenario",
    "regional_scenario",
    "zipf_weights",
]
