"""Request arrival processes.

:class:`PoissonArrivals` generates exponential inter-arrival gaps (the
standard model for independent viewers); :class:`UniformArrivals` spaces
requests evenly, useful for load benchmarks where variance is unwanted.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional

from repro.errors import WorkloadError


class PoissonArrivals:
    """Poisson arrival process with a fixed mean rate.

    Args:
        rate_per_s: Mean arrivals per simulated second.
        rng: Random stream for reproducibility.
    """

    def __init__(self, rate_per_s: float, rng: Optional[random.Random] = None):
        if not (rate_per_s > 0.0):
            raise WorkloadError(f"arrival rate must be positive, got {rate_per_s!r}")
        self.rate_per_s = rate_per_s
        self._rng = rng if rng is not None else random.Random(0)

    def next_gap(self) -> float:
        """One exponential inter-arrival gap in seconds."""
        return self._rng.expovariate(self.rate_per_s)

    def times_until(self, horizon_s: float, start: float = 0.0) -> List[float]:
        """All arrival instants in (start, horizon_s].

        Raises:
            WorkloadError: If the horizon precedes the start.
        """
        if horizon_s < start:
            raise WorkloadError(
                f"horizon {horizon_s} precedes start {start}"
            )
        times: List[float] = []
        t = start
        while True:
            t += self.next_gap()
            if t > horizon_s:
                break
            times.append(t)
        return times

    def stream(self, start: float = 0.0) -> Iterator[float]:
        """Endless iterator of arrival instants."""
        t = start
        while True:
            t += self.next_gap()
            yield t


class UniformArrivals:
    """Deterministic, evenly spaced arrivals.

    Args:
        period_s: Gap between consecutive arrivals.
    """

    def __init__(self, period_s: float):
        if not (period_s > 0.0):
            raise WorkloadError(f"arrival period must be positive, got {period_s!r}")
        self.period_s = period_s

    def times_until(self, horizon_s: float, start: float = 0.0) -> List[float]:
        """All arrival instants in (start, horizon_s].

        Instants are computed as ``start + i * period`` (not by repeated
        addition), so long schedules carry no float drift.
        """
        if horizon_s < start:
            raise WorkloadError(f"horizon {horizon_s} precedes start {start}")
        times: List[float] = []
        index = 1
        while True:
            t = start + index * self.period_s
            if t > horizon_s:
                break
            times.append(t)
            index += 1
        return times

    def stream(self, start: float = 0.0) -> Iterator[float]:
        """Endless iterator of arrival instants (drift-free)."""
        index = 1
        while True:
            yield start + index * self.period_s
            index += 1
